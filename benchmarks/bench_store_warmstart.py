"""Cold vs. warm wall time for a Table-3-style sweep (tiered store).

Runs the full six-synthesis cell (flat/hier x area/power plus voltage
scaling, including the complex-library build) for three Table 3
circuits twice against one ``--cache-dir``: once with an empty store
(cold) and once warm-started from the first run's persistent tier.

Asserts:

* every cell's winning metrics and emitted netlists are bit-identical
  between the cold and the warm run (the store changes wall-clock
  only);
* the warm sweep is at least 1.5x faster than the cold sweep.

Writes ``results/store_warmstart.txt`` (human-readable) and
``results/BENCH_5.json`` (wall-clock ratio plus per-tier hit rates).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time

from repro.reporting.sweep import run_cell
from repro.rtl import emit_netlist
from repro.synthesis import SynthesisConfig

from conftest import RESULTS_DIR, save_result

_CIRCUITS = ("paulin", "test1", "dct")
_LAXITY = 2.2
_SAMPLES = 24
_SPEEDUP_TARGET = 1.5
_FIELDS = (
    "flat_area",
    "flat_area_scaled",
    "flat_power",
    "hier_area",
    "hier_area_scaled",
    "hier_power",
)


def _config(cache_dir: str) -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        cache_dir=cache_dir,
    )


def _identity(cell):
    out = []
    for field in _FIELDS:
        r = getattr(cell, field)
        out.append(
            (
                field,
                r.area,
                r.power,
                r.vdd,
                r.clk_ns,
                r.metrics.schedule_length,
                emit_netlist(r.netlist()),
            )
        )
    return out


def _store_counters(cell):
    hits: dict[str, int] = {}
    misses: dict[str, int] = {}
    for field in _FIELDS:
        t = getattr(cell, field).telemetry
        for key, n in t.store_hits.items():
            hits[key] = hits.get(key, 0) + n
        for key, n in t.store_misses.items():
            misses[key] = misses.get(key, 0) + n
    return hits, misses


def _run_sweep(cache_dir: str):
    cells = {}
    started = time.perf_counter()
    for circuit in _CIRCUITS:
        cells[circuit] = run_cell(
            circuit, _LAXITY, _config(cache_dir), _SAMPLES
        )
    return cells, time.perf_counter() - started


def test_store_warmstart(benchmark):
    cache_dir = tempfile.mkdtemp(prefix="repro-store-bench-")
    try:
        cold, cold_s = _run_sweep(cache_dir)
        warm, warm_s = benchmark.pedantic(
            _run_sweep, args=(cache_dir,), rounds=1, iterations=1
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    for circuit in _CIRCUITS:
        assert _identity(warm[circuit]) == _identity(cold[circuit]), (
            f"warm {circuit} cell must be bit-identical to the cold cell"
        )

    speedup = cold_s / max(warm_s, 1e-9)

    hits: dict[str, int] = {}
    misses: dict[str, int] = {}
    for circuit in _CIRCUITS:
        cell_hits, cell_misses = _store_counters(warm[circuit])
        for key, n in cell_hits.items():
            hits[key] = hits.get(key, 0) + n
        for key, n in cell_misses.items():
            misses[key] = misses.get(key, 0) + n
    hit_rates = {
        key: hits.get(key, 0) / max(hits.get(key, 0) + misses.get(key, 0), 1)
        for key in sorted(set(hits) | set(misses))
    }

    lines = [
        "Store warm start: cold vs. warm Table-3-style sweep",
        "===================================================",
        f"circuits:        {', '.join(_CIRCUITS)} (laxity {_LAXITY:g}, "
        f"{_SAMPLES} samples)",
        f"cold wall time:  {cold_s:.2f} s  (empty --cache-dir)",
        f"warm wall time:  {warm_s:.2f} s  (persistent tier pre-populated)",
        f"speedup:         {speedup:.2f}x  (target >= {_SPEEDUP_TARGET}x)",
        "results identical: yes (asserted)",
        "",
        "warm per-tier hit rates (synthesis telemetry):",
    ]
    for key, rate in hit_rates.items():
        lines.append(
            f"  {key:<22} {hits.get(key, 0):>6} hits / "
            f"{misses.get(key, 0):>6} misses  ({rate:.1%})"
        )
    save_result("store_warmstart", "\n".join(lines))

    snapshot = {
        "bench": "store_warmstart",
        "circuits": list(_CIRCUITS),
        "laxity": _LAXITY,
        "n_samples": _SAMPLES,
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "speedup": round(speedup, 3),
        "target_speedup": _SPEEDUP_TARGET,
        "warm_store_hits": dict(sorted(hits.items())),
        "warm_store_misses": dict(sorted(misses.items())),
        "warm_hit_rates": {k: round(v, 4) for k, v in hit_rates.items()},
    }
    (RESULTS_DIR / "BENCH_5.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    assert speedup >= _SPEEDUP_TARGET, (
        f"expected the warm sweep to be >= {_SPEEDUP_TARGET}x faster than "
        f"cold, got {speedup:.2f}x"
    )
