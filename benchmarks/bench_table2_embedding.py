"""Figure 3 + Table 2: RTL embedding of two distinct DFGs.

Rebuilds Example 3: the two DFGs are mapped onto RTL modules, the
modules are overlaid into ``NewRTL`` by the embedding procedure, and
the component-correspondence table (the paper's Table 2) plus the area
comparison (RTL1 = 57.94, RTL2 = 53.89, NewRTL = 61.67 in the paper's
units — merged ≈ the larger constituent, far below the sum) are
regenerated.  The naive disjoint union is included as the ablation
baseline for the embedding algorithm.
"""

import pytest

from repro.bench_suite import example3_dfg1, example3_dfg2, table2_library
from repro.dfg import Design
from repro.power import simulate_subgraph, speech_traces
from repro.reporting import render_table
from repro.rtl import ComponentKind, embed_netlists, naive_union
from repro.synthesis import SynthesisEnv, build_netlist, initial_solution

from conftest import save_result


@pytest.fixture(scope="module")
def rtl_pair():
    library = table2_library()
    design = Design("ex3")
    dfg1, dfg2 = example3_dfg1(), example3_dfg2()
    design.add_dfg(dfg1, top=True)
    design.add_dfg(dfg2)
    netlists = []
    for dfg in (dfg1, dfg2):
        traces = speech_traces(dfg, n=24, seed=0)
        sim = simulate_subgraph(design, dfg, [traces[n] for n in dfg.inputs])
        env = SynthesisEnv(design, library, "area")
        solution = initial_solution(env, dfg, sim, 10.0, 5.0, 1000.0)
        netlists.append(build_netlist(solution, name=f"RTL{len(netlists) + 1}"))
    return library, netlists[0], netlists[1]


def test_table2_correspondence(benchmark, rtl_pair):
    library, rtl1, rtl2 = rtl_pair
    result = benchmark(embed_netlists, rtl1, rtl2, "NewRTL")

    reverse_b = {v: k for k, v in result.map_b.items()}
    rows = []
    for comp in result.netlist.components():
        if comp.kind == ComponentKind.PORT:
            continue
        from_a = comp.comp_id if rtl1.has_component(comp.comp_id) else "-"
        from_b = reverse_b.get(comp.comp_id, "-")
        cell = comp.cell
        area = library.cell(cell).area
        rows.append([comp.comp_id, from_a, from_b, cell, area])
    rows.sort(key=lambda r: (r[3], r[0]))
    table = render_table(
        ["NewRTL", "RTL1", "RTL2", "Library", "Area"],
        rows,
        title="Table 2: labeling NewRTL to implement DFG1 and DFG2",
        digits=0,
    )
    save_result("table2_embedding", table)

    cells = sorted(
        c.cell for c in result.netlist.components(ComponentKind.FUNCTIONAL)
    )
    # The union complement of Table 2: A1 A2 M1 M2 S1.
    assert cells == ["Add1", "Add1", "Mult1", "Mult1", "Sub1"]


def test_table2_area_comparison(benchmark, rtl_pair):
    library, rtl1, rtl2 = rtl_pair
    merged = benchmark(embed_netlists, rtl1, rtl2, "NewRTL")
    union = naive_union(rtl1, rtl2, "Union")
    a1, a2 = rtl1.area(library), rtl2.area(library)
    am, au = merged.netlist.area(library), union.netlist.area(library)
    table = render_table(
        ["module", "area", "vs sum"],
        [
            ["RTL1", a1, a1 / (a1 + a2)],
            ["RTL2", a2, a2 / (a1 + a2)],
            ["NewRTL (embedded)", am, am / (a1 + a2)],
            ["naive union (ablation)", au, au / (a1 + a2)],
        ],
        title="Example 3: area of the merged RTL module",
    )
    save_result("table2_areas", table)

    # Paper shape: merged close to max constituent, far below the sum.
    assert am < 0.8 * (a1 + a2)
    assert am <= au
    assert am >= max(a1, a2) - 1e-9


def test_embedding_speed(benchmark, rtl_pair):
    _library, rtl1, rtl2 = rtl_pair
    benchmark(lambda: embed_netlists(rtl1, rtl2, "NewRTL"))
