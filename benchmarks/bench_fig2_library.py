"""Figure 2: the library of complex RTL modules.

The paper's library offers pre-characterized complex modules (C1..C5)
per behavior, with different internal structures (power-optimized
parallel versions next to compact shared ones).  This bench builds the
equivalent library for ``test1``'s behaviors and prints the inventory:
module name, behavior, area, latency and internal capacitance — the
quantities move A trades off.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.library import default_library
from repro.reporting import render_table
from repro.synthesis import SynthesisConfig
from repro.synthesis.library_gen import build_complex_library

from conftest import save_result

FAST = SynthesisConfig(max_moves=5, max_passes=2, n_clocks=1)


@pytest.fixture(scope="module")
def fig2_library():
    design = get_benchmark("test1")
    return build_complex_library(design, default_library(), config=FAST)


def test_fig2_module_inventory(benchmark, fig2_library):
    rows = []
    for behavior in sorted(fig2_library.complex_behaviors()):
        for module in fig2_library.complex_modules_for(behavior):
            profile = module.profile(behavior)
            rows.append(
                [
                    module.name,
                    behavior,
                    round(module.area(fig2_library), 1),
                    round(profile.latency_ns, 1),
                    round(module.cap_internal(behavior), 2),
                ]
            )
    table = benchmark(
        render_table,
        ["module", "behavior", "area", "latency (ns @5V)", "cap"],
        rows,
        title="Figure 2: complex RTL module library for test1",
    )
    save_result("fig2_complex_library", table)

    behaviors = set(fig2_library.complex_behaviors())
    assert {"dot3", "sumprod", "macd", "sum4"} <= behaviors
    # Anisomorphic dot3 variants both present (C1 vs C2 of the paper).
    assert len(fig2_library.complex_modules_for("dot3")) >= 2


def test_area_and_power_corners_differ(benchmark, fig2_library):
    """The library must actually span the area/power trade-off."""
    modules = benchmark(fig2_library.complex_modules_for, "macd")
    areas = {round(m.area(fig2_library), 1) for m in modules}
    caps = {round(m.cap_internal("macd"), 2) for m in modules}
    assert len(areas) > 1 or len(caps) > 1


def test_library_build_speed(benchmark):
    design = get_benchmark("test1")
    benchmark.pedantic(
        lambda: build_complex_library(
            design,
            default_library(),
            objectives=("area",),
            laxity_factors=(1.5,),
            config=FAST,
        ),
        rounds=1,
        iterations=1,
    )
