"""Relational candidate discovery: throughput vs. the legacy loops.

PR 9 replaced the per-pair Python loops that regenerate each KL round's
candidate set with the relational engine
(``repro.synthesis.relational``): the solution is projected into
in-memory SQLite tables once per round and the A/C/D candidate families
come back from batched joins as *lazy descriptors* — ``Solution.clone``
only runs for candidates that survive pruning.  The legacy loops remain
behind ``--no-relational`` and are bit-identical by construction, which
makes an in-process race meaningful:

* both engines generate from the *same* solution object, so schedule
  and lifetime memos are shared and the timed region isolates discovery
  itself (join + descriptor cost vs. loop + eager clone cost);
* the candidate multisets are asserted identical (by
  ``candidate_order_key``, the total order the improvement loop breaks
  ties with) outside the timed region — equal multisets mean equal
  search trajectories, so the time ratio is the throughput ratio.

Circuits: the paper's ``paulin`` and ``test1`` benchmarks plus one
seeded flat design from :mod:`repro.gen` (no module instances, so the
race measures the relational families rather than eager resynthesis).

Writes ``benchmarks/results/BENCH_9.json``; the CI perf-smoke job gates
on >= 3x generation throughput for paulin and test1.
"""

from __future__ import annotations

import json
import time

from repro.bench_suite import get_benchmark
from repro.gen import GenConfig, generate_design
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis import SynthesisConfig, SynthesisEnv
from repro.synthesis.api import flatten_for_synthesis
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    candidate_order_key,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from repro.synthesis.relational import RelationalView

from conftest import RESULTS_DIR, save_result

_GATED = ("paulin", "test1")
_N_TRACES = 256
_ROUNDS = 15  # best-of timing rounds per engine
_SPEEDUP_TARGET = 3.0  # required on every gated circuit

#: Seeded flat companion design: larger than the paper circuits and
#: free of module instances, so discovery time is dominated by the
#: families the relational engine actually batches.
_GEN_SEED = 9
_GEN_CONFIG = GenConfig(
    n_behaviors=(0, 0),
    ops_per_dfg=(28, 28),
    inputs_per_dfg=(5, 5),
    outputs_per_dfg=(3, 3),
    n_samples=32,
)


def _harness(circuit: str):
    """(env, solution, sim) for one circuit, memos cold."""
    if circuit.startswith("gen:"):
        generated = generate_design(int(circuit[4:]), _GEN_CONFIG)
        design, traces = generated.design, generated.traces
    else:
        # Flatten first: test1's top holds only module instances (zero
        # simple op nodes), so the un-flattened candidate families are
        # degenerate.  The flattened design is what the paper's baseline
        # (and `repro synth --flatten`) actually iterates on.
        design = flatten_for_synthesis(get_benchmark(circuit))
        traces = speech_traces(design.top, n=_N_TRACES, seed=3)
    top = design.top
    sim = simulate_subgraph(design, top, [traces[name] for name in top.inputs])
    env = SynthesisEnv(design, default_library(), "power", SynthesisConfig())
    solution = initial_solution(env, top, sim, 10.0, 5.0, 2000.0)
    return env, solution, sim


def _generate(env, solution, sim, *, relational: bool):
    locked: frozenset[str] = frozenset()
    view = RelationalView(env, solution, locked) if relational else None
    cands = list(type_a_b_candidates(env, solution, sim, locked, view=view))
    cands += sharing_candidates(env, solution, sim, locked, view=view)
    cands += splitting_candidates(env, solution, sim, locked, view=view)
    return cands


def _race(circuit: str) -> dict:
    env, solution, sim = _harness(circuit)

    # Warm pass both ways: primes the shared schedule/lifetime memos so
    # the timed rounds measure steady-state discovery, and pins the
    # engines to the same candidate multiset.
    relational = _generate(env, solution, sim, relational=True)
    legacy = _generate(env, solution, sim, relational=False)
    keys = sorted(candidate_order_key(c) for c in relational)
    assert keys == sorted(candidate_order_key(c) for c in legacy), (
        f"engines discovered different candidate multisets on {circuit}"
    )
    lazy = sum(1 for c in relational if not c.is_materialized)

    # Each engine is timed in its own consecutive block (not
    # interleaved) so the best-of reflects steady state rather than
    # the other engine's cache footprint.
    relational_s = legacy_s = float("inf")
    for _ in range(_ROUNDS):
        t0 = time.perf_counter()
        _generate(env, solution, sim, relational=True)
        relational_s = min(relational_s, time.perf_counter() - t0)
    for _ in range(_ROUNDS):
        t0 = time.perf_counter()
        _generate(env, solution, sim, relational=False)
        legacy_s = min(legacy_s, time.perf_counter() - t0)

    n = len(keys)
    return {
        "candidates": n,
        "lazy_descriptors": lazy,
        "legacy_s": legacy_s,
        "legacy_per_s": n / legacy_s,
        "relational_s": relational_s,
        "relational_per_s": n / relational_s,
        "speedup": legacy_s / relational_s,
    }


def test_candidate_generation_throughput():
    circuits = (*_GATED, f"gen:{_GEN_SEED}")
    races = {circuit: _race(circuit) for circuit in circuits}

    snapshot = {
        "bench": "candidate_gen",
        "pr": 9,
        "rounds": _ROUNDS,
        "n_traces": _N_TRACES,
        "gen_seed": _GEN_SEED,
        "races": races,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_9.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "Relational candidate discovery vs legacy per-pair loops",
        f"(equal candidate multisets asserted, best of {_ROUNDS})",
        "=================================================================",
    ]
    for circuit, m in races.items():
        lines.append(
            f"{circuit:8s} {m['candidates']:4d} candidates "
            f"({m['lazy_descriptors']} lazy): "
            f"{m['legacy_per_s']:.0f}/s legacy -> "
            f"{m['relational_per_s']:.0f}/s relational "
            f"({m['speedup']:.2f}x)"
        )
    save_result("candidate_gen", "\n".join(lines))

    slow = {c: races[c]["speedup"] for c in _GATED
            if races[c]["speedup"] < _SPEEDUP_TARGET}
    assert not slow, (
        f"expected >= {_SPEEDUP_TARGET}x generation throughput on every "
        "gated circuit, got "
        + ", ".join(f"{c}: {s:.2f}x" for c, s in slow.items())
    )
