"""Portfolio-search quality gate and priors-transfer benchmark.

Two claims from the search-policy layer, measured end to end:

* **Portfolio never worse.**  For every bench-suite design, a
  3-member/2-generation cross-pollinating portfolio must reach a final
  cost no worse than the plain single-search baseline (member 0 of
  generation 0 *is* the baseline policy on a cold slate, so this is a
  structural guarantee — the bench holds the line and records the
  wall-clock price paid for the extra members).

* **Priors transfer.**  A priors-guided search warm-started from
  statistics mined on one design must converge in fewer pricing
  evaluations than the same search cold on a *structurally similar*
  design — here an identifier-renamed clone, which the iso-invariant
  fingerprints from ``repro.dfg.canonical`` map to the same priors
  entry.  Final metrics are recorded so quality regressions are
  visible alongside the evaluation savings.

Writes ``results/search_portfolio.txt`` (human-readable) and
``results/BENCH_10.json`` (per-design costs, wall clocks, and the
cold/warm evaluation counts).
"""

from __future__ import annotations

import dataclasses
import json
import time

from repro.bench_suite import benchmark_names, get_benchmark
from repro.dfg import parse_design
from repro.dfg.canonical import design_fingerprint
from repro.gen import GenConfig, generate_design
from repro.search import portfolio_synthesize
from repro.search.priors import mine_events, save_priors
from repro.synthesis import SynthesisConfig, synthesize
from repro.synthesis.store import SynthesisStore

from conftest import RESULTS_DIR, save_result

_LAXITY = 2.2
_SAMPLES = 8
_MEMBERS = 3
_GENERATIONS = 2
_PRIORS_SEED = 7
_PRIORS_SAMPLING_NS = 600.0
_PRIORS_SAMPLES = 12


def _config(**overrides) -> SynthesisConfig:
    base = SynthesisConfig(
        max_passes=2,
        max_moves=6,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
    )
    return dataclasses.replace(base, **overrides)


def _is_number(token: str) -> bool:
    try:
        float(token)
    except ValueError:
        return False
    return True


def _rename_clone(text: str) -> str:
    """Systematically rename every identifier in a design text.

    The clone is graph-isomorphic to the original but shares no names
    with it — the strongest "structurally similar, textually distinct"
    design we can construct, and exactly the case the iso-invariant
    priors fingerprint must see through.
    """
    renamed = []
    for line in text.splitlines():
        tokens = line.split()
        if not tokens:
            renamed.append(line)
            continue
        head = tokens[0]

        def _rn(token: str) -> str:
            return token if _is_number(token) else "q" + token

        if head in ("design", "top"):
            tokens = [head] + [_rn(t) for t in tokens[1:]]
        elif head == "dfg":
            new = [head, _rn(tokens[1])]
            rest = tokens[2:]
            i = 0
            while i < len(rest):
                if rest[i] == "behavior":
                    new += ["behavior", _rn(rest[i + 1])]
                    i += 2
                else:
                    new.append(rest[i])
                    i += 1
            tokens = new
        elif head in ("input", "const"):
            tokens = [head, "q" + tokens[1]] + tokens[2:]
        elif head == "op":
            tokens = [head, "q" + tokens[1], tokens[2]]
            tokens += [_rn(t) for t in line.split()[3:]]
        elif head in ("hier", "output"):
            tokens = [head] + [_rn(t) for t in tokens[1:]]
        renamed.append(" ".join(tokens))
    return "\n".join(renamed) + "\n"


def _portfolio_sweep():
    rows = []
    for name in benchmark_names():
        design = get_benchmark(name)
        started = time.perf_counter()
        base = synthesize(
            design, laxity_factor=_LAXITY, objective="power",
            config=_config(), n_samples=_SAMPLES,
        )
        base_s = time.perf_counter() - started
        base_cost = base.metrics.objective_value("power")

        started = time.perf_counter()
        outcome = portfolio_synthesize(
            design, laxity_factor=_LAXITY, objective="power",
            config=_config(n_workers=1), n_samples=_SAMPLES,
            n_members=_MEMBERS, generations=_GENERATIONS,
        )
        portfolio_s = time.perf_counter() - started
        rows.append({
            "design": name,
            "baseline_cost": base_cost,
            "baseline_s": round(base_s, 3),
            "portfolio_cost": outcome.cost,
            "portfolio_s": round(portfolio_s, 3),
            "winner_policy": outcome.winner.policy,
            "winner_generation": outcome.winner.generation,
            "improvement": round(
                (base_cost - outcome.cost) / base_cost, 5
            ) if base_cost else 0.0,
        })
    return rows


def _priors_transfer():
    gen = generate_design(_PRIORS_SEED, GenConfig())
    clone = parse_design(_rename_clone(gen.text), source="<renamed clone>")
    fp_original = design_fingerprint(gen.design, gen.design.top)
    fp_clone = design_fingerprint(clone, clone.top)
    assert fp_original == fp_clone, (
        "the renamed clone must hash to the original's iso-invariant "
        "fingerprint — priors transfer depends on it"
    )

    cold_config = _config(search_policy="priors", trace=True,
                          trace_timings=False)
    started = time.perf_counter()
    cold = synthesize(
        gen.design, sampling_ns=_PRIORS_SAMPLING_NS, objective="power",
        config=cold_config, n_samples=_PRIORS_SAMPLES,
    )
    cold_s = time.perf_counter() - started

    store = SynthesisStore()
    table = mine_events(cold.trace_events)
    save_priors(store, fp_original, table)

    started = time.perf_counter()
    warm = synthesize(
        clone, sampling_ns=_PRIORS_SAMPLING_NS, objective="power",
        config=_config(search_policy="priors"), n_samples=_PRIORS_SAMPLES,
        store=store,
    )
    warm_s = time.perf_counter() - started

    return {
        "gen_seed": _PRIORS_SEED,
        "fingerprint": fp_original,
        "mined_stats": len(table.stats),
        "cold_evaluations": cold.telemetry.evaluations,
        "warm_evaluations": warm.telemetry.evaluations,
        "cold_cost": cold.metrics.objective_value("power"),
        "warm_cost": warm.metrics.objective_value("power"),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
    }


def test_search_portfolio(benchmark):
    rows = benchmark.pedantic(_portfolio_sweep, rounds=1, iterations=1)
    transfer = _priors_transfer()

    lines = [
        "Portfolio search vs. single-search baseline (bench suite)",
        "=========================================================",
        f"{_MEMBERS} members x {_GENERATIONS} generations, laxity "
        f"{_LAXITY:g}, {_SAMPLES} samples, serial members",
        "",
        f"{'design':<18} {'baseline':>10} {'portfolio':>10} {'gain':>7} "
        f"{'winner':>12} {'base s':>7} {'port s':>7}",
    ]
    for row in rows:
        lines.append(
            f"{row['design']:<18} {row['baseline_cost']:>10.4f} "
            f"{row['portfolio_cost']:>10.4f} {row['improvement']:>6.1%} "
            f"{row['winner_policy']:>12} {row['baseline_s']:>7.2f} "
            f"{row['portfolio_s']:>7.2f}"
        )
    lines += [
        "",
        "Priors transfer (gen design -> identifier-renamed clone)",
        "--------------------------------------------------------",
        f"seed {transfer['gen_seed']}, sampling "
        f"{_PRIORS_SAMPLING_NS:g} ns, {_PRIORS_SAMPLES} samples, "
        f"{transfer['mined_stats']} mined (regime, kind) entries",
        f"cold evaluations: {transfer['cold_evaluations']}   "
        f"(cost {transfer['cold_cost']:.4f}, {transfer['cold_s']:.2f} s)",
        f"warm evaluations: {transfer['warm_evaluations']}   "
        f"(cost {transfer['warm_cost']:.4f}, {transfer['warm_s']:.2f} s)",
        f"saved: {transfer['cold_evaluations'] - transfer['warm_evaluations']}"
        " pricing evaluations",
    ]
    save_result("search_portfolio", "\n".join(lines))

    snapshot = {
        "bench": "search_portfolio",
        "laxity": _LAXITY,
        "n_samples": _SAMPLES,
        "n_members": _MEMBERS,
        "generations": _GENERATIONS,
        "designs": rows,
        "priors_transfer": transfer,
    }
    (RESULTS_DIR / "BENCH_10.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    for row in rows:
        assert row["portfolio_cost"] <= row["baseline_cost"], (
            f"portfolio must never price worse than the single-search "
            f"baseline on {row['design']}: {row['portfolio_cost']} > "
            f"{row['baseline_cost']}"
        )
    assert transfer["warm_evaluations"] < transfer["cold_evaluations"], (
        "priors-warm search must converge in fewer pricing evaluations "
        f"than cold: warm {transfer['warm_evaluations']} >= cold "
        f"{transfer['cold_evaluations']}"
    )
