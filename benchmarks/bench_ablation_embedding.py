"""Ablation 2: RTL embedding vs the naive disjoint union, at scale.

Sweeps the benchmark suite's behaviors, synthesizes a module per
behavior, and overlays every pair (the candidate set move C works
with).  Embedding must dominate the naive union on merged area, and the
margin is reported per pair.
"""

import itertools

import pytest

from repro.bench_suite import get_benchmark
from repro.library import default_library
from repro.reporting import render_table
from repro.rtl import embed_netlists, naive_union
from repro.synthesis import SynthesisConfig
from repro.synthesis.library_gen import build_complex_library

from conftest import save_result


@pytest.fixture(scope="module")
def module_pool():
    """One area-corner module per behavior of test1 + lat."""
    library = default_library()
    config = SynthesisConfig(max_moves=4, max_passes=1, n_clocks=1)
    for circuit in ("test1", "lat"):
        build_complex_library(
            get_benchmark(circuit),
            library,
            objectives=("area",),
            laxity_factors=(1.5,),
            config=config,
        )
    modules = []
    for behavior in library.complex_behaviors():
        modules.append(library.complex_modules_for(behavior)[0])
    return library, modules


def test_embedding_beats_union_on_all_pairs(benchmark, module_pool):
    library, modules = module_pool

    def sweep():
        rows = []
        for a, b in itertools.combinations(modules, 2):
            merged = embed_netlists(a.netlist, b.netlist, "m")
            union = naive_union(a.netlist, b.netlist, "u")
            rows.append(
                [
                    f"{a.behavior}+{b.behavior}",
                    merged.netlist.area(library),
                    union.netlist.area(library),
                    merged.netlist.area(library) / union.netlist.area(library),
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_result(
        "ablation_embedding",
        render_table(
            ["pair", "embedded", "naive union", "ratio"],
            rows,
            title="Ablation: RTL embedding vs naive union (area)",
        ),
    )
    for pair, merged_area, union_area, ratio in rows:
        assert merged_area <= union_area + 1e-9, pair
    # On average the overlay recovers a substantial fraction.
    mean_ratio = sum(r[3] for r in rows) / len(rows)
    assert mean_ratio < 0.95
