"""Ablation 1: variable-depth (KL) improvement vs greedy hill climbing.

The paper's engine "derives its power from the ability to perform moves
which worsen the quality of the solution" (Section 4).  Greedy hill
climbing is emulated by limiting each pass to a single move, so only
individually improving moves ever commit; the KL configuration allows
ten-move sequences with best-prefix commit.  KL must never lose, and on
the hierarchical benchmarks it typically wins (a merge that pays off
only after a follow-up replacement is invisible to greedy).
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.library import default_library
from repro.power import default_traces, simulate_subgraph
from repro.reporting import render_table
from repro.synthesis import (
    SynthesisConfig,
    SynthesisEnv,
    improve_solution,
    initial_solution,
)

from conftest import save_result

CIRCUITS = ("paulin", "test1")


def _improve_with(design, max_moves: int, objective: str):
    library = default_library()
    top = design.top
    traces = default_traces(top, n=32)
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    config = SynthesisConfig(max_moves=max_moves, max_passes=8, n_clocks=1)
    env = SynthesisEnv(design, library, objective, config)
    start = initial_solution(env, top, sim, 10.0, 5.0, 600.0)
    ctx = env.context(sim)
    improved = improve_solution(env, start, sim)
    return ctx.cost(improved)


@pytest.mark.parametrize("circuit", CIRCUITS)
def test_kl_never_loses_to_greedy(benchmark, circuit):
    design = get_benchmark(circuit)
    greedy = _improve_with(design, max_moves=1, objective="area")
    kl = benchmark.pedantic(
        lambda: _improve_with(design, max_moves=10, objective="area"),
        rounds=1,
        iterations=1,
    )
    save_result(
        f"ablation_kl_{circuit}",
        render_table(
            ["strategy", "final area cost"],
            [["greedy (1-move passes)", greedy], ["variable-depth KL", kl]],
            title=f"Ablation: KL vs greedy on {circuit} (area objective)",
        ),
    )
    assert kl <= greedy * 1.02
