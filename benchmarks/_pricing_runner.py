"""Measure candidate-pricing throughput of whichever engine is on PYTHONPATH.

Helper for ``bench_candidate_eval.py``: the bench runs this script twice
with an identical workload — once against the current tree and once
against the seed revision checked out into a scratch git worktree — and
compares the two JSON reports.  The script therefore sticks to the API
surface both revisions share (``improve_solution``,
``EvaluationContext.evaluate``) and feature-detects the rest
(``prune_candidates`` does not exist at the seed revision).

"Pricing" time is accounted by wrapping ``EvaluationContext.evaluate``
(and, when present, the pre-pricing pruner) with a ``perf_counter``
accumulator, so candidate generation and bookkeeping are excluded on
both sides.  A candidate counts as *dispositioned* when it was either
priced or pruned; because both engines are bit-identical, they walk the
same search trajectory and disposition the same candidates — the script
prints the final (area, power) so the caller can assert exactly that.

Usage: ``python _pricing_runner.py <circuit> <n_traces>`` → one JSON
object on stdout.
"""

from __future__ import annotations

import json
import sys
import time


def main() -> None:
    """Run one improvement on <circuit> and report pricing time as JSON."""
    circuit = sys.argv[1]
    n_traces = int(sys.argv[2])

    from repro.bench_suite import get_benchmark
    from repro.library import default_library
    from repro.power import simulate_subgraph, speech_traces
    from repro.synthesis import SynthesisConfig, SynthesisEnv
    from repro.synthesis import improve as improve_mod
    from repro.synthesis.costs import EvaluationContext
    from repro.synthesis.initial import initial_solution

    design = get_benchmark(circuit)
    top = design.top
    traces = speech_traces(top, n=n_traces, seed=3)
    sim = simulate_subgraph(design, top, [traces[name] for name in top.inputs])
    env = SynthesisEnv(design, default_library(), "power", SynthesisConfig())
    solution = initial_solution(env, top, sim, 10.0, 5.0, 2000.0)

    state = {"pricing_s": 0.0, "evals": 0, "pruned": 0}
    real_eval = EvaluationContext.evaluate

    def timed_eval(self, solution, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return real_eval(self, solution, *args, **kwargs)
        finally:
            state["pricing_s"] += time.perf_counter() - t0
            state["evals"] += 1

    EvaluationContext.evaluate = timed_eval

    # Newer trees price whole candidate batches through one activity-kernel
    # call before `evaluate` replays them from the primed stash; that work
    # is pricing too, so fold it into the same accumulator (absent at the
    # seed revision).
    real_eval_batch = getattr(EvaluationContext, "evaluate_batch", None)
    if real_eval_batch is not None:

        def timed_eval_batch(self, work, *args, **kwargs):
            t0 = time.perf_counter()
            try:
                return real_eval_batch(self, work, *args, **kwargs)
            finally:
                state["pricing_s"] += time.perf_counter() - t0

        EvaluationContext.evaluate_batch = timed_eval_batch

    real_prune = getattr(improve_mod, "prune_candidates", None)
    if real_prune is not None:

        def timed_prune(env_, work, candidates):
            t0 = time.perf_counter()
            survivors = real_prune(env_, work, candidates)
            state["pricing_s"] += time.perf_counter() - t0
            state["pruned"] += len(candidates) - len(survivors)
            return survivors

        improve_mod.prune_candidates = timed_prune

    t0 = time.perf_counter()
    final = improve_mod.improve_solution(env, solution, sim)
    improve_s = time.perf_counter() - t0

    metrics = env.context(sim).evaluate(final)
    print(
        json.dumps(
            {
                "circuit": circuit,
                "area": metrics.area,
                "power": metrics.power,
                "dispositioned": state["evals"] + state["pruned"],
                "evals": state["evals"],
                "pruned": state["pruned"],
                "pricing_s": state["pricing_s"],
                "improve_s": improve_s,
            }
        )
    )


if __name__ == "__main__":
    main()
