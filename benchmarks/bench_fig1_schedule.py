"""Figure 1(b) + Example 1: scheduled/assigned hierarchical DFG.

Builds the paper's ``test1`` (Figure 1(a)), maps every hierarchical
node onto a complex module, schedules the result, and prints the
schedule-and-assignment table the figure depicts.  Also reproduces
Example 1's profile arithmetic on real module profiles and benchmarks
the profile-aware list scheduler.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.library import default_library
from repro.power import default_traces, simulate_subgraph
from repro.reporting import render_table
from repro.scheduling import schedule_tasks
from repro.synthesis import SynthesisConfig, SynthesisEnv, initial_solution

from conftest import save_result


@pytest.fixture(scope="module")
def scheduled_test1():
    design = get_benchmark("test1")
    library = default_library()
    top = design.top
    traces = default_traces(top, n=32)
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    env = SynthesisEnv(design, library, "area", SynthesisConfig(n_clocks=1))
    solution = initial_solution(env, top, sim, 10.0, 5.0, 1000.0)
    return solution


def test_fig1_schedule_table(benchmark, scheduled_test1):
    solution = scheduled_test1
    sched = benchmark(solution.schedule)
    rows = []
    for inst_id, order in sorted(sched.instance_order.items()):
        for task_id in order:
            task = solution.task(task_id)
            inst = solution.instances[inst_id]
            rows.append(
                [
                    "+".join(task.nodes),
                    inst.type_name,
                    inst_id,
                    sched.start[task_id],
                    sched.finish[task_id],
                ]
            )
    rows.sort(key=lambda r: (r[3], r[2]))
    table = render_table(
        ["node(s)", "module", "instance", "start", "finish"],
        rows,
        title="Figure 1(b): schedule and assignment of test1 (cycles)",
        digits=0,
    )
    save_result("fig1_schedule", table)
    assert sched.length > 0


def test_example1_profile_arithmetic(benchmark, scheduled_test1):
    """Example 1: start = max_i(arrival_i - offset_i); the DFG3 module
    starts only when its profile allows, not when all inputs arrive."""
    solution = scheduled_test1
    sched = solution.schedule()
    inst_id = benchmark(solution.instance_of, "DFG3")
    task = solution.task(f"{inst_id}#0")
    arrivals = {
        e.dst_port: sched.avail[e.signal]
        for e in solution.dfg.in_edges("DFG3")
    }
    expected_start = max(
        max(
            arrivals[p] - task.offset_of("DFG3", p)
            for p in sorted(arrivals)
        ),
        0,
    )
    assert sched.start[task.task_id] >= expected_start


def test_scheduler_speed(benchmark, scheduled_test1):
    solution = scheduled_test1
    tasks = solution.tasks()
    benchmark(lambda: schedule_tasks(solution.dfg, tasks))
