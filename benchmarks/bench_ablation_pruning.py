"""Ablation 4: Vdd/clock-set pruning vs exhaustive outer loops.

Figure 4 wraps the iterative core in loops over *pruned* supply and
clock sets (procedure from ref. [10]).  This bench compares the pruned
configuration against a much wider clock set: solution quality must be
preserved (within noise) while the pruned run visits far fewer
operating points.
"""

import time

import pytest

from repro.bench_suite import get_benchmark
from repro.library import default_library
from repro.reporting import render_table
from repro.synthesis import SynthesisConfig, candidate_clocks, synthesize

from conftest import save_result


def _run(n_clocks: int):
    design = get_benchmark("paulin")
    config = SynthesisConfig(max_moves=6, max_passes=2, n_clocks=n_clocks)
    started = time.perf_counter()
    result = synthesize(
        design, laxity_factor=2.2, objective="power", config=config
    )
    return result.power, time.perf_counter() - started, len(result.history)


def test_pruned_vs_exhaustive_clock_sets(benchmark):
    power_pruned, time_pruned, points_pruned = benchmark.pedantic(
        lambda: _run(n_clocks=2), rounds=1, iterations=1
    )
    power_full, time_full, points_full = _run(n_clocks=6)

    save_result(
        "ablation_pruning",
        render_table(
            ["configuration", "power", "op points", "time (s)"],
            [
                ["pruned (2 clocks/Vdd)", power_pruned, points_pruned, time_pruned],
                ["exhaustive (6 clocks/Vdd)", power_full, points_full, time_full],
            ],
            title="Ablation: clock-set pruning (paulin, power objective)",
            digits=3,
        ),
    )

    # Pruning visits fewer points and loses at most a sliver of quality.
    assert points_pruned < points_full
    assert power_pruned <= power_full * 1.15


def test_clock_candidates_ranked_by_waste(benchmark):
    library = default_library()
    pruned = benchmark(candidate_clocks, library, 5.0, 300.0, 2)
    wide = candidate_clocks(library, 5.0, 300.0, 8)
    # The pruned set is a prefix of the quality ranking.
    assert set(pruned) <= set(wide)
