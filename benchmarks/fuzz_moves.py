"""Move fuzzer: random hierarchical designs, moves A-D, differential oracle.

Generates random hierarchical designs (a couple of random sub-behaviors
plus a top level mixing simple operations with hierarchical calls),
builds an initial architecture, and then hammers it with randomly chosen
candidates from the real move generators — type A/B replacements,
sharing/embedding (move C) and splitting (move D).  Every applied
candidate's RTL is executed by the cycle-accurate interpreter and
cross-checked against the behavioral simulation via
:func:`repro.verify.verify_solution`.

Any counterexample is a synthesis bug: it is printed (shrunk, with the
divergent output, cycle and round seed) and the script exits non-zero.
Runs until the time budget is exhausted::

    PYTHONPATH=src python benchmarks/fuzz_moves.py --budget 60 --seed 7

Each round is a pure function of its own seed, so a failure report's
``seed N`` replays in isolation::

    PYTHONPATH=src python benchmarks/fuzz_moves.py --replay N

The nightly CI job runs this with a 300 s budget (see
``.github/workflows/nightly.yml``).
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.dfg import Design, GraphBuilder, Operation, validate_design
from repro.library import default_library
from repro.power import simulate_subgraph, white_traces
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from repro.verify import verify_solution

BINARY_OPS = (Operation.ADD, Operation.SUB, Operation.MULT)


def _random_body(
    b: GraphBuilder,
    rng: random.Random,
    inputs: list,
    n_ops: int,
    max_outputs: int,
    hier_calls: list[tuple[str, int, int]] | None = None,
) -> int:
    """Grow a random expression body; every node ends up reaching an output.

    Each input seeds at least one operation, and dangling results are
    folded together with adders until at most *max_outputs* sinks remain,
    which become the primary outputs.  Returns the output count.
    """
    wires = list(inputs)
    used: set = set()
    sinks: list = []
    n_ops = max(n_ops, len(inputs))
    for k in range(n_ops):
        if hier_calls is not None and rng.random() < 0.4:
            name, n_inputs, n_outputs = rng.choice(hier_calls)
            operands = [rng.choice(wires) for _ in range(n_inputs)]
            if k < len(inputs):
                operands[0] = inputs[k]
            call = b.hier(name, *operands, n_outputs=n_outputs)
            results = [call[p] for p in range(n_outputs)]
        else:
            lhs = inputs[k] if k < len(inputs) else rng.choice(wires)
            rhs = rng.choice(wires)
            operands = [lhs, rhs]
            results = [b.op(rng.choice(BINARY_OPS), lhs, rhs)]
        used.update(operands)
        wires.extend(results)
        sinks.extend(results)
    sinks = [w for w in sinks if w not in used]
    while len(sinks) > max_outputs:
        lhs, rhs = sinks.pop(rng.randrange(len(sinks))), sinks.pop()
        sinks.append(b.add(lhs, rhs))
    for o_idx, wire in enumerate(sinks):
        b.output(f"o{o_idx}", wire)
    return len(sinks)


def random_design(rng: random.Random) -> Design:
    """A random hierarchical design: sub-behaviors called from the top."""
    design = Design(f"fuzz_{rng.randrange(1 << 30)}")

    behaviors: list[tuple[str, int, int]] = []  # (name, n_inputs, n_outputs)
    for b_idx in range(rng.randint(1, 2)):
        name = f"beh{b_idx}"
        n_inputs = rng.randint(2, 3)
        b = GraphBuilder(f"{name}_impl", behavior=name)
        inputs = b.inputs(*[f"i{k}" for k in range(n_inputs)])
        n_outputs = _random_body(
            b, rng, inputs, rng.randint(2, 5), rng.randint(1, 2)
        )
        design.add_dfg(b.build())
        behaviors.append((name, n_inputs, n_outputs))

    top = GraphBuilder("top")
    inputs = top.inputs(*[f"x{k}" for k in range(rng.randint(2, 4))])
    _random_body(
        top, rng, inputs, rng.randint(3, 7), rng.randint(1, 2), behaviors
    )
    design.add_dfg(top.build(), top=True)
    validate_design(design)
    return design


def fuzz_one(
    round_seed: int, n_samples: int, steps: int
) -> tuple[int, int, list[str]]:
    """One fuzz round: fresh design, random move walk under the oracle.

    The whole round is a pure function of *round_seed* (reported with
    any failure), so one round replays in isolation via ``--replay``.
    Returns ``(checks, failures, reports)``.
    """
    rng = random.Random(round_seed)
    design = random_design(rng)
    library = default_library()
    top = design.top
    traces = white_traces(top, n=n_samples, seed=rng.randrange(1 << 30))
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    config = SynthesisConfig(max_share_pairs=8, max_split_candidates=4)
    objective = rng.choice(("area", "power"))
    env = SynthesisEnv(design, library, objective, config)
    # Generous budget: the fuzzer cares about equivalence, not feasibility.
    solution = initial_solution(env, top, sim, 10.0, 5.0, 2000.0)

    checks, failures, reports = 0, 0, []
    result = verify_solution(design, solution, sim=sim)
    checks += 1
    if not result.ok:
        failures += 1
        reports.append(
            f"[seed {round_seed} {design.name} {objective}] initial "
            f"solution: {result.counterexample.describe()}"
        )
        return checks, failures, reports

    for _step in range(steps):
        candidates = []
        candidates.extend(type_a_b_candidates(env, solution, sim, frozenset()))
        candidates.extend(sharing_candidates(env, solution, sim, frozenset()))
        candidates.extend(splitting_candidates(env, solution, sim, frozenset()))
        if not candidates:
            break
        chosen = rng.choice(candidates)
        solution = chosen.solution
        if solution.register_conflicts():
            # A conflicted binding is priced as infeasible (infinite
            # cost) and can never be committed by the engine; its RTL
            # genuinely miscomputes, so the oracle would "fail" it for
            # the right reason.  Walk on without checking equivalence.
            continue
        result = verify_solution(design, solution, sim=sim)
        checks += 1
        if not result.ok:
            failures += 1
            reports.append(
                f"[seed {round_seed} {design.name} {objective}] after "
                f"{chosen.description}: {result.counterexample.describe()}"
            )
            break
    return checks, failures, reports


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--budget", type=float, default=30.0,
                        help="wall-clock budget in seconds (default: 30)")
    parser.add_argument("--seed", type=int, default=0,
                        help="base RNG seed (default: 0)")
    parser.add_argument("--samples", type=int, default=12,
                        help="trace samples per design (default: 12)")
    parser.add_argument("--steps", type=int, default=6,
                        help="random moves applied per design (default: 6)")
    parser.add_argument("--replay", type=int, default=None, metavar="SEED",
                        help="replay exactly one round with this round "
                             "seed (as printed in a failure report)")
    args = parser.parse_args(argv)

    if args.replay is not None:
        checks, failures, reports = fuzz_one(
            args.replay, args.samples, args.steps
        )
        print(f"replayed round seed {args.replay}: {checks} checks, "
              f"{failures} failures")
        for report in reports:
            print(f"FAIL {report}", file=sys.stderr)
        return 1 if failures else 0

    seeder = random.Random(args.seed)
    deadline = time.monotonic() + args.budget
    rounds = total_checks = total_failures = 0
    failures_seen: list[str] = []
    while time.monotonic() < deadline:
        round_seed = seeder.randrange(1 << 30)
        checks, failures, reports = fuzz_one(
            round_seed, args.samples, args.steps
        )
        rounds += 1
        total_checks += checks
        total_failures += failures
        failures_seen.extend(reports)

    print(f"fuzzed {rounds} random designs, {total_checks} differential "
          f"checks, {total_failures} failures")
    for report in failures_seen:
        print(f"FAIL {report}", file=sys.stderr)
    return 1 if total_failures else 0


if __name__ == "__main__":
    sys.exit(main())
