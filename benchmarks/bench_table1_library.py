"""Table 1: the simple-module library (areas and cycle delays).

Regenerates the paper's functional-unit/register table at the reference
operating point (10 ns clock, 5 V) and benchmarks the synthesis of the
full characterization database that substitutes for the paper's
standard-cell flow.
"""

from repro.library import build_characterization, table1_rows
from repro.reporting import render_table

from conftest import save_result


def test_table1_rows(benchmark):
    rows = benchmark(table1_rows)
    table = render_table(
        ["cell", "Area", "Delay (cycles)"],
        [[name, area, cycles] for name, area, cycles in rows],
        title="Table 1: functional unit and register properties (10 ns, 5 V)",
        digits=0,
    )
    save_result("table1_library", table)

    by_name = {name: (area, cycles) for name, area, cycles in rows}
    assert by_name["add1"] == (30.0, 1)
    assert by_name["mult2"] == (100.0, 5)


def test_characterization_database(benchmark):
    table = benchmark(build_characterization)
    assert len(table) >= 42  # 14 cells x 3 supplies
