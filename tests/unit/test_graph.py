"""Unit tests for the DFG graph model."""

import pytest

from repro.dfg import DFG, NodeKind, Operation
from repro.errors import DFGError


def small_graph() -> DFG:
    g = DFG("g")
    g.add_input("x")
    g.add_input("y")
    g.add_const("k", 7)
    g.add_op("m", Operation.MULT)
    g.add_op("a", Operation.ADD)
    g.add_output("o")
    g.connect("x", 0, "m", 0)
    g.connect("y", 0, "m", 1)
    g.connect("m", 0, "a", 0)
    g.connect("k", 0, "a", 1)
    g.connect("a", 0, "o", 0)
    return g


class TestConstruction:
    def test_duplicate_node_rejected(self):
        g = DFG("g")
        g.add_input("x")
        with pytest.raises(DFGError, match="duplicate node id"):
            g.add_input("x")

    def test_input_order_is_port_order(self):
        g = DFG("g")
        g.add_input("b")
        g.add_input("a")
        assert g.inputs == ["b", "a"]

    def test_connect_unknown_node(self):
        g = DFG("g")
        g.add_input("x")
        with pytest.raises(DFGError, match="unknown node"):
            g.connect("x", 0, "nope", 0)

    def test_connect_bad_ports(self):
        g = DFG("g")
        g.add_input("x")
        g.add_op("a", Operation.ADD)
        with pytest.raises(DFGError, match="output ports"):
            g.connect("x", 1, "a", 0)
        with pytest.raises(DFGError, match="input ports"):
            g.connect("x", 0, "a", 5)

    def test_double_drive_rejected(self):
        g = DFG("g")
        g.add_input("x")
        g.add_input("y")
        g.add_op("a", Operation.ADD)
        g.connect("x", 0, "a", 0)
        with pytest.raises(DFGError, match="already driven"):
            g.connect("y", 0, "a", 0)

    def test_hier_node_needs_ports(self):
        g = DFG("g")
        with pytest.raises(DFGError, match="at least one"):
            g.add_hier("h", "beh", n_inputs=0, n_outputs=1)


class TestQueries:
    def test_in_edges_sorted_by_port(self):
        g = DFG("g")
        g.add_input("x")
        g.add_input("y")
        g.add_op("s", Operation.SUB)
        g.connect("y", 0, "s", 1)
        g.connect("x", 0, "s", 0)
        assert [e.dst_port for e in g.in_edges("s")] == [0, 1]

    def test_predecessors_successors(self):
        g = small_graph()
        assert g.predecessors("a") == ["m", "k"]
        assert g.successors("m") == ["a"]

    def test_signals_and_consumers(self):
        g = small_graph()
        signals = g.signals()
        assert ("m", 0) in signals
        consumers = g.consumers(("m", 0))
        assert len(consumers) == 1
        assert consumers[0].dst == "a"

    def test_node_kinds(self):
        g = small_graph()
        assert g.node("x").kind == NodeKind.INPUT
        assert g.node("k").kind == NodeKind.CONST
        assert len(g.op_nodes()) == 2
        assert g.hier_nodes() == []

    def test_unknown_node_raises(self):
        g = small_graph()
        with pytest.raises(DFGError, match="unknown node"):
            g.node("zzz")

    def test_len_and_contains(self):
        g = small_graph()
        assert len(g) == 6
        assert "m" in g
        assert "zzz" not in g


class TestTopoOrder:
    def test_respects_dependencies(self):
        g = small_graph()
        order = g.topo_order()
        assert order.index("m") < order.index("a")
        assert order.index("a") < order.index("o")
        assert len(order) == len(g)

    def test_cycle_detected(self):
        g = DFG("g")
        g.add_op("a", Operation.ADD)
        g.add_op("b", Operation.ADD)
        g.connect("a", 0, "b", 0)
        g.connect("b", 0, "a", 0)
        with pytest.raises(DFGError, match="cycle"):
            g.topo_order()


class TestCopy:
    def test_copy_is_independent(self):
        g = small_graph()
        clone = g.copy("clone")
        clone.add_input("extra")
        assert "extra" not in g
        assert clone.name == "clone"
        assert clone.behavior == g.behavior

    def test_copy_preserves_edges(self):
        g = small_graph()
        clone = g.copy()
        assert sorted(
            (e.src, e.src_port, e.dst, e.dst_port) for e in clone.edges()
        ) == sorted((e.src, e.src_port, e.dst, e.dst_port) for e in g.edges())
