"""Unit tests for the SQLite job registry (lifecycle + concurrency)."""

import json
import subprocess
import sys

import pytest

from repro.errors import ServiceError
from repro.service import JobRegistry

REQUEST = {"gen_seed": 1, "laxity_factor": 2.0}


@pytest.fixture
def registry(tmp_path):
    reg = JobRegistry(tmp_path)
    yield reg
    reg.close()


class TestLifecycle:
    def test_create_and_get_round_trip(self, registry):
        record = registry.create(REQUEST, "fp1")
        fetched = registry.get(record.job_id)
        assert fetched is not None
        assert fetched.state == "queued"
        assert fetched.request == REQUEST
        assert fetched.fingerprint == "fp1"
        assert fetched.clients == 1

    def test_unknown_job_is_none(self, registry):
        assert registry.get("nope") is None

    def test_mark_running_only_from_queued(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.mark_running(record.job_id)
        assert registry.get(record.job_id).state == "running"
        registry.finish(record.job_id, {"area": 1.0})
        # A late mark_running must not resurrect a finished job.
        registry.mark_running(record.job_id)
        assert registry.get(record.job_id).state == "done"

    def test_finish_attaches_result(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.finish(record.job_id, {"area": 1.0})
        done = registry.get(record.job_id)
        assert done.state == "done"
        assert done.result == {"area": 1.0}
        assert done.finished_at is not None

    def test_fail_attaches_error(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.fail(record.job_id, "boom")
        failed = registry.get(record.job_id)
        assert failed.state == "failed"
        assert failed.error == "boom"
        assert failed.result is None

    def test_create_done_for_store_served_jobs(self, registry):
        record = registry.create(
            REQUEST, "fp1", state="done", result={"area": 2.0},
            served_from_store=True,
        )
        fetched = registry.get(record.job_id)
        assert fetched.state == "done"
        assert fetched.served_from_store
        assert fetched.finished_at is not None

    def test_create_rejects_unknown_state(self, registry):
        with pytest.raises(ServiceError, match="unknown job state"):
            registry.create(REQUEST, "fp1", state="pending")

    def test_add_client_counts_coalesced_duplicates(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.add_client(record.job_id)
        registry.add_client(record.job_id)
        assert registry.get(record.job_id).clients == 3


class TestCoalesceLookup:
    def test_active_for_finds_queued_and_running(self, registry):
        record = registry.create(REQUEST, "fp1")
        assert registry.active_for("fp1").job_id == record.job_id
        registry.mark_running(record.job_id)
        assert registry.active_for("fp1").job_id == record.job_id

    def test_finished_jobs_are_not_active(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.fail(record.job_id, "boom")
        assert registry.active_for("fp1") is None

    def test_distinct_fingerprints_do_not_coalesce(self, registry):
        registry.create(REQUEST, "fp1")
        assert registry.active_for("fp2") is None

    def test_counts_and_queue_depth(self, registry):
        a = registry.create(REQUEST, "fp1")
        registry.create(REQUEST, "fp2")
        registry.mark_running(a.job_id)
        assert registry.counts() == {
            "queued": 1, "running": 1, "done": 0, "failed": 0,
        }
        assert registry.queue_depth() == 2


class TestRetention:
    def test_prune_drops_oldest_finished_and_artifacts(self, registry):
        ids = []
        for i in range(4):
            record = registry.create(REQUEST, f"fp{i}")
            registry.finish(record.job_id, {"i": i})
            ids.append(record.job_id)
        registry.progress_path(ids[0]).write_text('{"k": "job_start"}\n')
        live = registry.create(REQUEST, "fp-live")
        assert registry.prune(max_finished=2) == 2
        # Oldest two finished jobs gone, newest two and the live job kept.
        assert registry.get(ids[0]) is None
        assert registry.get(ids[1]) is None
        assert registry.get(ids[2]) is not None
        assert registry.get(ids[3]) is not None
        assert registry.get(live.job_id).state == "queued"
        assert not registry.progress_path(ids[0]).exists()

    def test_prune_noop_under_bound(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.finish(record.job_id, {})
        assert registry.prune(max_finished=5) == 0

    def test_prune_rejects_negative(self, registry):
        with pytest.raises(ServiceError):
            registry.prune(-1)


class TestProgress:
    def test_progress_empty_before_start(self, registry):
        record = registry.create(REQUEST, "fp1")
        assert registry.progress(record.job_id) == []

    def test_progress_parses_events(self, registry):
        record = registry.create(REQUEST, "fp1")
        path = registry.progress_path(record.job_id)
        path.write_text(
            json.dumps({"k": "job_start"}) + "\n"
            + json.dumps({"k": "synthesized", "area": 1.0}) + "\n"
        )
        events = registry.progress(record.job_id)
        assert [e["k"] for e in events] == ["job_start", "synthesized"]

    def test_torn_final_line_is_invisible_not_fatal(self, registry):
        record = registry.create(REQUEST, "fp1")
        registry.progress_path(record.job_id).write_text(
            json.dumps({"k": "job_start"}) + "\n" + '{"k": "synth'
        )
        assert [e["k"] for e in registry.progress(record.job_id)] == \
            ["job_start"]


class TestSchemaVersion:
    def test_version_mismatch_drops_rows(self, tmp_path):
        first = JobRegistry(tmp_path)
        first.create(REQUEST, "fp1")
        with first._lock:
            first._db.execute(
                "UPDATE meta SET value = '0' WHERE key = 'schema_version'"
            )
            first._db.commit()
        first.close()
        reopened = JobRegistry(tmp_path)
        assert reopened.counts()["queued"] == 0
        reopened.close()


_WRITER_SCRIPT = """
import sys
from repro.service import JobRegistry

root, tag, n = sys.argv[1], sys.argv[2], int(sys.argv[3])
registry = JobRegistry(root)
ids = []
for i in range(n):
    record = registry.create({"gen_seed": i}, f"{tag}-fp{i}")
    registry.mark_running(record.job_id)
    registry.finish(record.job_id, {"tag": tag, "i": i})
    ids.append(record.job_id)
# Also hammer the read-modify-write path against the other process.
for job_id in ids:
    registry.add_client(job_id)
registry.close()
print(f"{tag} done")
"""


class TestConcurrentWriterProcesses:
    def test_two_processes_one_registry(self, tmp_path):
        """Two writer processes drive full job lifecycles on one registry.

        Jobs have disjoint ids (uuid) and fingerprints, so the registry
        must end up with every row intact — no lost updates, no locked-
        database failures escaping the retry layer.
        """
        n = 25
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _WRITER_SCRIPT,
                 str(tmp_path), tag, str(n)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            )
            for tag in ("w1", "w2")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out

        registry = JobRegistry(tmp_path)
        counts = registry.counts()
        assert counts["done"] == 2 * n
        assert counts["queued"] == counts["running"] == counts["failed"] == 0
        registry.close()
