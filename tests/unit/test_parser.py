"""Unit tests for the textual DFG format (parser and writer)."""

import pytest

from repro.dfg import parse_design, validate_design, write_design
from repro.dfg.parser import parse_ref
from repro.errors import ParseError

GOOD = """
# a design with one sub-behavior
design demo
top main

dfg bf behavior butterfly
  input a 16
  input b 16
  op s add a b
  op d sub a b
  output o0 s
  output o1 d
end

dfg main
  input x
  input y
  const k 3
  hier h1 butterfly 2 x y
  op m mult h1.0 h1.1
  op a add m k
  output out a
end
"""


class TestParseRef:
    def test_plain(self):
        assert parse_ref("node") == ("node", 0)

    def test_with_port(self):
        assert parse_ref("node.3") == ("node", 3)

    def test_bad_port(self):
        with pytest.raises(ParseError):
            parse_ref("node.x")

    def test_empty_node(self):
        with pytest.raises(ParseError):
            parse_ref(".3")


class TestParser:
    def test_good_design(self):
        d = parse_design(GOOD)
        assert d.name == "demo"
        assert d.top_name == "main"
        assert d.dfg("bf").behavior == "butterfly"
        validate_design(d)

    def test_roundtrip(self, butterfly_design):
        text = write_design(butterfly_design)
        d2 = parse_design(text)
        validate_design(d2)
        assert d2.top_name == butterfly_design.top_name
        assert len(d2.top.op_nodes()) == len(butterfly_design.top.op_nodes())
        assert sorted(d2.dfg_names()) == sorted(butterfly_design.dfg_names())

    def test_comments_and_blanks_ignored(self):
        text = "design d\n\n# comment\ndfg m\n input x # trailing\n output o x\nend\ntop m\n"
        d = parse_design(text)
        assert d.top_name == "m"

    @pytest.mark.parametrize(
        "text, match",
        [
            ("dfg a\nend\ndfg a\nend", "duplicate"),
            ("dfg a\ninput x", "unterminated"),
            ("input x", "outside a dfg block"),
            ("dfg a\n op o frobnicate x y\nend", "unknown operation"),
            ("dfg a\n weird x\nend", "unknown statement"),
            ("dfg a\nend\ntop missing", "not defined"),
            ("dfg a\n hier h beh\nend", "expected 'hier"),
            ("dfg a\n hier h beh x y\nend", "output count must be an integer"),
            ("", "empty design"),
            ("dfg a\ndfg b\nend", "nested 'dfg'"),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(ParseError, match=match):
            parse_design(text)

    def test_error_carries_line_number(self):
        try:
            parse_design("dfg a\n op o frobnicate x\nend")
        except ParseError as exc:
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_undriven_reference_fails_on_connect(self):
        text = "dfg a\n op o add ghost ghost\n output q o\nend"
        with pytest.raises(ParseError, match="unknown node"):
            parse_design(text)


HIER_GOOD = """
design d
top main
dfg bf behavior beh
  input a
  input b
  op s add a b
  op t sub a b
  output o0 s
  output o1 t
end
dfg main
  input x
  input y
  hier h beh 2 x y
  op m mult h.0 h.1
  output out m
end
"""


class TestParserHardening:
    """Deliberate rejections carry statement context (file:line)."""

    @pytest.mark.parametrize(
        "text, match",
        [
            # Duplicate node ids within a block.
            ("dfg a\n input x\n input x\nend", "duplicate node"),
            ("dfg a\n input x\n const x 3\nend", "duplicate node"),
            ("dfg a\n input x\n op x add x x\nend", "duplicate node"),
            # Dangling reference (never defined anywhere in the block).
            ("dfg a\n input x\n op o add x ghost\n output q o\nend", "unknown node"),
            # Re-declaring an output id is a duplicate, not a re-drive.
            (
                "dfg a\n input x\n input y\n op o add x y\n"
                " output q o\n output q x\nend",
                "duplicate node",
            ),
            # Malformed integer fields name the field.
            ("dfg a\n input x wide\nend", "input width must be an integer"),
            ("dfg a\n const k three\nend", "const value must be an integer"),
            # Structural statement-shape errors.
            ("dfg a\n input\nend", "expected 'input"),
            ("dfg a\n const k\nend", "expected 'const"),
            ("dfg a\n output o\nend", "expected 'output"),
            ("design a b", "exactly one name"),
            ("design a\ndesign b", "duplicate 'design'"),
            ("top a b", "exactly one DFG name"),
            ("dfg", "expected 'dfg"),
            ("end", "'end' outside"),
        ],
    )
    def test_rejection(self, text, match):
        with pytest.raises(ParseError, match=match):
            parse_design(text)

    def test_hier_input_arity_mismatch(self):
        text = HIER_GOOD.replace("hier h beh 2 x y", "hier h beh 2 x")
        with pytest.raises(ParseError, match="passes 1 inputs") as exc:
            parse_design(text)
        assert exc.value.line_no == 15

    def test_hier_output_count_mismatch(self):
        text = HIER_GOOD.replace("hier h beh 2 x y", "hier h beh 3 x y")
        with pytest.raises(ParseError, match="declares 3 outputs") as exc:
            parse_design(text)
        assert exc.value.line_no == 15

    def test_hier_mismatch_checked_against_later_definition(self):
        # The behavior block comes *after* the hier site in the file.
        text = (
            "design d\ntop main\n"
            "dfg main\n input x\n hier h beh 1 x x\n output o h\nend\n"
            "dfg bf behavior beh\n input a\n output o a\nend\n"
        )
        with pytest.raises(ParseError, match="passes 2 inputs") as exc:
            parse_design(text)
        assert exc.value.line_no == 5

    def test_undefined_behavior_left_to_validation(self):
        # Behaviors not defined in the file may be supplied externally;
        # the parser must not reject them.
        text = "dfg main\n input x\n hier h ext 1 x\n output o h\nend\ntop main\n"
        d = parse_design(text)
        assert d.dfg("main").node("h").behavior == "ext"

    def test_source_prefixes_message(self):
        with pytest.raises(ParseError, match=r"bad\.dfg:2: ") as exc:
            parse_design("dfg a\n weird x\nend", source="bad.dfg")
        assert exc.value.source == "bad.dfg"
        assert exc.value.line_no == 2

    def test_duplicate_dfg_name_carries_block_line(self):
        with pytest.raises(ParseError) as exc:
            parse_design("dfg a\nend\n\ndfg a\nend\n", source="dup.dfg")
        assert "dup.dfg:4" in str(exc.value)

    def test_good_design_unaffected_by_source(self):
        d = parse_design(HIER_GOOD, source="good.dfg")
        validate_design(d)
