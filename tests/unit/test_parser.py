"""Unit tests for the textual DFG format (parser and writer)."""

import pytest

from repro.dfg import parse_design, validate_design, write_design
from repro.dfg.parser import parse_ref
from repro.errors import ParseError

GOOD = """
# a design with one sub-behavior
design demo
top main

dfg bf behavior butterfly
  input a 16
  input b 16
  op s add a b
  op d sub a b
  output o0 s
  output o1 d
end

dfg main
  input x
  input y
  const k 3
  hier h1 butterfly 2 x y
  op m mult h1.0 h1.1
  op a add m k
  output out a
end
"""


class TestParseRef:
    def test_plain(self):
        assert parse_ref("node") == ("node", 0)

    def test_with_port(self):
        assert parse_ref("node.3") == ("node", 3)

    def test_bad_port(self):
        with pytest.raises(ParseError):
            parse_ref("node.x")

    def test_empty_node(self):
        with pytest.raises(ParseError):
            parse_ref(".3")


class TestParser:
    def test_good_design(self):
        d = parse_design(GOOD)
        assert d.name == "demo"
        assert d.top_name == "main"
        assert d.dfg("bf").behavior == "butterfly"
        validate_design(d)

    def test_roundtrip(self, butterfly_design):
        text = write_design(butterfly_design)
        d2 = parse_design(text)
        validate_design(d2)
        assert d2.top_name == butterfly_design.top_name
        assert len(d2.top.op_nodes()) == len(butterfly_design.top.op_nodes())
        assert sorted(d2.dfg_names()) == sorted(butterfly_design.dfg_names())

    def test_comments_and_blanks_ignored(self):
        text = "design d\n\n# comment\ndfg m\n input x # trailing\n output o x\nend\ntop m\n"
        d = parse_design(text)
        assert d.top_name == "m"

    @pytest.mark.parametrize(
        "text, match",
        [
            ("dfg a\nend\ndfg a\nend", "duplicate"),
            ("dfg a\ninput x", "unterminated"),
            ("input x", "outside a dfg block"),
            ("dfg a\n op o frobnicate x y\nend", "unknown operation"),
            ("dfg a\n weird x\nend", "unknown statement"),
            ("dfg a\nend\ntop missing", "not defined"),
            ("dfg a\n hier h beh\nend", "expected 'hier"),
            ("dfg a\n hier h beh x y\nend", "output count must be an integer"),
            ("", "empty design"),
            ("dfg a\ndfg b\nend", "nested 'dfg'"),
        ],
    )
    def test_errors(self, text, match):
        with pytest.raises(ParseError, match=match):
            parse_design(text)

    def test_error_carries_line_number(self):
        try:
            parse_design("dfg a\n op o frobnicate x\nend")
        except ParseError as exc:
            assert "line 2" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected ParseError")

    def test_undriven_reference_fails_on_connect(self):
        text = "dfg a\n op o add ghost ghost\n output q o\nend"
        with pytest.raises(ParseError, match="unknown node"):
            parse_design(text)
