"""Unit tests for the Example 3 / Table 2 reconstruction."""

from repro.bench_suite import example3_dfg1, example3_dfg2, table2_library
from repro.dfg import Operation, op_histogram, validate_dfg


class TestExample3DFGs:
    def test_dfg1_resource_complement(self):
        """RTL1 of Table 2: two adders, two multipliers, one subtractor."""
        hist = op_histogram(example3_dfg1())
        assert hist[Operation.ADD] == 2
        assert hist[Operation.MULT] == 2
        assert hist[Operation.SUB] == 1

    def test_dfg2_resource_complement(self):
        """RTL2 of Table 2: two adders, two multipliers, no subtractor."""
        hist = op_histogram(example3_dfg2())
        assert hist[Operation.ADD] == 2
        assert hist[Operation.MULT] == 2
        assert hist[Operation.SUB] == 0

    def test_both_valid(self):
        validate_dfg(example3_dfg1())
        validate_dfg(example3_dfg2())


class TestTable2Library:
    def test_areas_match_table2(self):
        lib = table2_library()
        assert lib.cell("Add1").area == 20.0
        assert lib.cell("Sub1").area == 20.0
        assert lib.cell("Mult1").area == 50.0
        assert lib.register_cell.area == 5.0

    def test_operations_covered(self):
        lib = table2_library()
        assert lib.cells_for(Operation.ADD)
        assert lib.cells_for(Operation.SUB)
        assert lib.cells_for(Operation.MULT)
