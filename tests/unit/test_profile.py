"""Unit tests for module profiles and their quantization."""

import pytest

from repro.rtl import CycleProfile, Profile


class TestProfileValidation:
    def test_needs_output(self):
        with pytest.raises(ValueError, match="output latency"):
            Profile((), ())

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Profile((-1.0,), (10.0,))

    def test_nonpositive_latency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Profile((0.0,), (0.0,))


class TestQuantization:
    def test_reference_point(self):
        p = Profile((0.0, 20.0), (45.0,))
        cp = p.at(clk_ns=10.0, vdd=5.0)
        assert cp == CycleProfile((0, 2), (5,))

    def test_offsets_floored_latencies_ceiled(self):
        """Quantization must never fabricate slack (offset 2.9 -> 2;
        latency 2.1 -> 3)."""
        p = Profile((29.0,), (21.0,))
        cp = p.at(clk_ns=10.0, vdd=5.0)
        assert cp.input_offsets == (2,)
        assert cp.output_latencies == (3,)

    def test_voltage_slows_profile(self):
        p = Profile((0.0,), (40.0,))
        assert p.at(10.0, 3.3).output_latencies[0] > p.at(10.0, 5.0).output_latencies[0]

    def test_minimum_one_cycle(self):
        p = Profile((0.0,), (0.5,))
        assert p.at(10.0, 5.0).output_latencies == (1,)

    def test_busy_cycles(self):
        cp = CycleProfile((0, 1), (3, 7))
        assert cp.busy_cycles == 7

    def test_bad_clock(self):
        p = Profile((0.0,), (10.0,))
        with pytest.raises(ValueError, match="positive"):
            p.at(0.0, 5.0)


class TestFromCycles:
    def test_roundtrip_at_same_point(self):
        p = Profile.from_cycles((0, 2), (5,), clk_ns=10.0, vdd=5.0)
        cp = p.at(10.0, 5.0)
        assert cp.input_offsets == (0, 2)
        assert cp.output_latencies == (5,)

    def test_roundtrip_at_other_voltage(self):
        """Characterized at 3.3 V, used at 3.3 V: cycle counts survive."""
        p = Profile.from_cycles((1, 3), (6,), clk_ns=12.0, vdd=3.3)
        cp = p.at(12.0, 3.3)
        assert cp.input_offsets == (1, 3)
        assert cp.output_latencies == (6,)
