"""Unit tests for table rendering helpers."""

from repro.reporting import fmt, render_table


class TestFmt:
    def test_float_digits(self):
        assert fmt(1.2345) == "1.23"
        assert fmt(1.2345, digits=3) == "1.234"

    def test_non_float_passthrough(self):
        assert fmt("abc") == "abc"
        assert fmt(42) == "42"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 22.5]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert lines[1] == "===="
        # line 2: headers, line 3: dashes, lines 4-5: data rows.
        assert "alpha" in lines[4]
        assert len(lines[4]) == len(lines[5])

    def test_wide_cells_stretch_columns(self):
        text = render_table(["h"], [["very-long-cell-content"]])
        header_line = text.splitlines()[0]
        assert len(header_line) >= len("very-long-cell-content")
