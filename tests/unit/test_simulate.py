"""Unit tests for bit-true DFG simulation."""

import numpy as np
import pytest

from repro.dfg import Design, GraphBuilder
from repro.errors import DFGError
from repro.power import simulate_design, simulate_dfg, simulate_subgraph


class TestFlatSimulation:
    def test_known_arithmetic(self, flat_dfg):
        traces = {
            "x": np.array([2, 3]),
            "y": np.array([5, -1]),
            "z": np.array([10, 10]),
        }
        sim = simulate_dfg(flat_dfg, traces)
        np.testing.assert_array_equal(sim.stream((), ("m1", 0)), [10, -3])
        np.testing.assert_array_equal(sim.stream((), ("a1", 0)), [20, 7])
        np.testing.assert_array_equal(sim.stream((), ("s1", 0)), [-8, -7])

    def test_constant_stream(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.output("o", b.add(x, 7))
        dfg = b.build()
        sim = simulate_dfg(dfg, {"x": np.array([1, 2, 3])})
        out_sig = dfg.in_edges("o")[0].signal
        np.testing.assert_array_equal(sim.stream((), out_sig), [8, 9, 10])

    def test_missing_trace_rejected(self, flat_dfg):
        with pytest.raises(DFGError, match="no trace supplied"):
            simulate_dfg(flat_dfg, {"x": np.array([1])})

    def test_length_mismatch_rejected(self, flat_dfg):
        with pytest.raises(DFGError, match="lengths differ"):
            simulate_dfg(
                flat_dfg,
                {"x": np.array([1]), "y": np.array([1, 2]), "z": np.array([1])},
            )

    def test_hier_node_rejected(self, butterfly_design):
        with pytest.raises(DFGError, match="flat DFG"):
            simulate_dfg(butterfly_design.top, {})


class TestHierarchicalSimulation:
    def test_internal_paths_populated(self, butterfly_design):
        traces = {
            name: np.array([1, 2, 3]) for name in butterfly_design.top.inputs
        }
        sim = simulate_design(butterfly_design, traces)
        assert sim.has(("h1",), ("badd", 0))
        assert sim.has(("h2",), ("bsub", 0))

    def test_hier_output_values(self, butterfly_design):
        traces = {
            "x": np.array([4]), "y": np.array([1]),
            "z": np.array([2]), "w": np.array([2]),
        }
        sim = simulate_design(butterfly_design, traces)
        assert sim.stream((), ("h1", 0))[0] == 5   # 4 + 1
        assert sim.stream((), ("h1", 1))[0] == 3   # 4 - 1
        assert sim.stream((), ("m1", 0))[0] == 20  # (4+1) * (2+2)

    def test_missing_signal_raises(self, butterfly_design):
        traces = {
            name: np.array([1]) for name in butterfly_design.top.inputs
        }
        sim = simulate_design(butterfly_design, traces)
        with pytest.raises(DFGError, match="no simulated stream"):
            sim.stream((), ("ghost", 0))


class TestSubgraphSimulation:
    def test_explicit_streams(self, butterfly_design):
        sub = butterfly_design.dfg("butterfly")
        sim = simulate_subgraph(
            butterfly_design, sub, [np.array([10, 20]), np.array([3, 5])]
        )
        np.testing.assert_array_equal(sim.stream((), ("badd", 0)), [13, 25])

    def test_stream_count_checked(self, butterfly_design):
        sub = butterfly_design.dfg("butterfly")
        with pytest.raises(DFGError, match="inputs"):
            simulate_subgraph(butterfly_design, sub, [np.array([1])])

    def test_plain_list_streams(self, butterfly_design):
        """Regression: plain Python lists used to hit ``.shape[0]``
        before the int64 coercion and crash with AttributeError."""
        sub = butterfly_design.dfg("butterfly")
        sim = simulate_subgraph(butterfly_design, sub, [[10, 20], [3, 5]])
        np.testing.assert_array_equal(sim.stream((), ("badd", 0)), [13, 25])

    def test_list_matches_array_input(self, butterfly_design):
        sub = butterfly_design.dfg("butterfly")
        from_list = simulate_subgraph(butterfly_design, sub, [[7, 8], [1, 2]])
        from_array = simulate_subgraph(
            butterfly_design, sub, [np.array([7, 8]), np.array([1, 2])]
        )
        np.testing.assert_array_equal(
            from_list.stream((), ("badd", 0)),
            from_array.stream((), ("badd", 0)),
        )
