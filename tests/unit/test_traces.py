"""Unit tests for the synthetic trace generators."""

import numpy as np

from repro.power import (
    image_traces,
    speech_traces,
    stream_activity,
    white_traces,
)


class TestGenerators:
    def test_deterministic(self, flat_dfg):
        t1 = speech_traces(flat_dfg, n=32, seed=5)
        t2 = speech_traces(flat_dfg, n=32, seed=5)
        for name in flat_dfg.inputs:
            np.testing.assert_array_equal(t1[name], t2[name])

    def test_seed_changes_data(self, flat_dfg):
        t1 = white_traces(flat_dfg, n=32, seed=1)
        t2 = white_traces(flat_dfg, n=32, seed=2)
        assert any(
            not np.array_equal(t1[name], t2[name]) for name in flat_dfg.inputs
        )

    def test_every_input_covered(self, flat_dfg):
        for gen in (white_traces, speech_traces, image_traces):
            traces = gen(flat_dfg, n=16)
            assert set(traces) == set(flat_dfg.inputs)
            assert all(len(traces[n]) == 16 for n in traces)

    def test_amplitude_bounds(self, flat_dfg):
        for gen in (white_traces, speech_traces, image_traces):
            traces = gen(flat_dfg, n=64)
            for stream in traces.values():
                assert np.all(np.abs(stream) < (1 << 15))


class TestCorrelationProperty:
    def test_speech_less_active_than_white(self, flat_dfg):
        """The substitution rationale: AR(1) streams toggle fewer bits
        sample-to-sample than white streams, so dedicating a resource to
        one of them pays off in power (DESIGN.md)."""
        speech = speech_traces(flat_dfg, n=128, seed=0)
        white = white_traces(flat_dfg, n=128, seed=0)
        a_speech = np.mean(
            [stream_activity(speech[n], 16) for n in flat_dfg.inputs]
        )
        a_white = np.mean(
            [stream_activity(white[n], 16) for n in flat_dfg.inputs]
        )
        assert a_speech < a_white - 0.05
