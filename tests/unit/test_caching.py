"""Unit tests for the bounded LRU cache behind the synthesis memo layers."""

from repro.synthesis.caching import HashedKey, LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", -1) == -1

    def test_mapping_dunders(self):
        cache = LRUCache(4)
        cache["k"] = "v"
        assert cache["k"] == "v"
        try:
            cache["missing"]
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_stored_none_is_not_a_miss(self):
        """The resynthesis memo stores None for failed attempts."""
        cache = LRUCache(4)
        cache.put("failed", None)
        hits_before = cache.hits
        assert cache.get("failed", "default") is None
        assert cache.hits == hits_before + 1
        assert cache["failed"] is None

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestEviction:
    def test_bounded_to_maxsize(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert list(cache) == [7, 8, 9]

    def test_access_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("old", 1)
        cache.put("new", 2)
        cache.get("old")  # refresh: "new" is now least recent
        cache.put("newest", 3)
        assert "old" in cache
        assert "new" not in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert "b" in cache

    def test_eviction_is_least_recently_used_first(self):
        """Eviction follows access recency exactly, oldest first."""
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        cache.get("a")  # recency now b < c < a
        cache.put("d", 4)  # evicts b
        assert list(cache) == ["c", "a", "d"]
        cache.put("e", 5)  # evicts c
        assert list(cache) == ["a", "d", "e"]

    def test_zero_size_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_negative_size_disables_storage(self):
        cache = LRUCache(-3)
        cache.put("a", 1)
        cache["b"] = 2
        assert len(cache) == 0
        assert cache.get("a") is None
        assert "b" not in cache


class TestCounters:
    def test_hits_and_misses(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.hits == 2
        assert cache.misses == 1


class _AlwaysHashZero:
    """Helper with a forced hash collision but value-based equality."""

    def __init__(self, tag):
        self.tag = tag

    def __hash__(self):
        return 0

    def __eq__(self, other):
        return isinstance(other, _AlwaysHashZero) and self.tag == other.tag


class TestHashedKey:
    def test_equal_values_are_equal_keys(self):
        a = HashedKey(("fp", 1, 2.5))
        b = HashedKey(("fp", 1, 2.5))
        assert a == b
        assert hash(a) == hash(b)
        cache = LRUCache(2)
        cache.put(a, "v")
        assert cache.get(b) == "v"

    def test_equal_hash_different_value_is_not_equal(self):
        """A hash collision must not make distinct keys alias."""
        a = HashedKey((_AlwaysHashZero("x"),))
        b = HashedKey((_AlwaysHashZero("y"),))
        assert hash(a) == hash(b)
        assert a != b
        cache = LRUCache(4)
        cache.put(a, "for-x")
        cache.put(b, "for-y")
        assert cache.get(a) == "for-x"
        assert cache.get(b) == "for-y"

    def test_non_hashedkey_comparison(self):
        key = HashedKey(("fp",))
        assert key != ("fp",)
        assert (key == object()) is False
