"""Unit tests for the bounded LRU cache behind the synthesis memo layers."""

from repro.synthesis.caching import LRUCache


class TestBasics:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_default(self):
        cache = LRUCache(4)
        assert cache.get("nope") is None
        assert cache.get("nope", -1) == -1

    def test_mapping_dunders(self):
        cache = LRUCache(4)
        cache["k"] = "v"
        assert cache["k"] == "v"
        try:
            cache["missing"]
        except KeyError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_stored_none_is_not_a_miss(self):
        """The resynthesis memo stores None for failed attempts."""
        cache = LRUCache(4)
        cache.put("failed", None)
        hits_before = cache.hits
        assert cache.get("failed", "default") is None
        assert cache.hits == hits_before + 1
        assert cache["failed"] is None

    def test_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None


class TestEviction:
    def test_bounded_to_maxsize(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.put(i, i)
        assert len(cache) == 3
        assert list(cache) == [7, 8, 9]

    def test_access_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("old", 1)
        cache.put("new", 2)
        cache.get("old")  # refresh: "new" is now least recent
        cache.put("newest", 3)
        assert "old" in cache
        assert "new" not in cache

    def test_overwrite_does_not_grow(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert "b" in cache

    def test_zero_size_disables_storage(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert len(cache) == 0
        assert cache.get("a") is None


class TestCounters:
    def test_hits_and_misses(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("b")
        assert cache.hits == 2
        assert cache.misses == 1
