"""Unit tests for the operating-corner sweep and Pareto reporting."""

import pytest

from repro.library.voltage import T_REF
from repro.reporting.corners import (
    DEFAULT_CORNERS,
    OperatingCorner,
    corner_grid,
    evaluate_corners,
    pareto_indices,
    render_corner_report,
)
from repro.synthesis import SynthesisConfig, synthesize
from repro.synthesis.store import SynthesisStore

QUICK = SynthesisConfig(max_moves=5, max_passes=2, n_clocks=1)


@pytest.fixture
def result(flat_design):
    return synthesize(
        flat_design, laxity_factor=2.0, objective="power", config=QUICK
    )


class TestCornerGrid:
    def test_full_grid_size(self):
        assert len(corner_grid()) == 9
        assert len(DEFAULT_CORNERS) == 9

    def test_canonical_names(self):
        by_name = {c.name: c for c in corner_grid()}
        assert by_name["slow"].vdd_factor == 0.9
        assert by_name["slow"].temp_c == 125.0
        assert by_name["typ"].vdd_factor == 1.0
        assert by_name["typ"].temp_c == T_REF
        assert by_name["fast"].vdd_factor == 1.1
        assert by_name["fast"].temp_c == -40.0

    def test_systematic_names_for_off_corners(self):
        names = {c.name for c in corner_grid()}
        assert "v0.90/t25" in names
        assert "v1.10/t125" in names

    def test_custom_axes(self):
        grid = corner_grid(vdd_factors=(0.95, 1.05), temps_c=(0.0, 100.0))
        assert len(grid) == 4
        by_name = {c.name: c for c in grid}
        assert (by_name["slow"].vdd_factor, by_name["slow"].temp_c) == (
            0.95,
            100.0,
        )
        assert (by_name["fast"].vdd_factor, by_name["fast"].temp_c) == (
            1.05,
            0.0,
        )


class TestParetoIndices:
    def test_single_point_is_frontier(self):
        assert pareto_indices([(1.0, 2.0)]) == [0]

    def test_dominated_point_excluded(self):
        assert pareto_indices([(1.0, 1.0), (2.0, 2.0)]) == [0]

    def test_tradeoff_points_both_survive(self):
        assert pareto_indices([(1.0, 2.0), (2.0, 1.0)]) == [0, 1]

    def test_ties_survive_together(self):
        assert pareto_indices([(1.0, 1.0), (1.0, 1.0)]) == [0, 1]

    def test_empty(self):
        assert pareto_indices([]) == []

    def test_duplicate_points_all_survive(self):
        """Exact duplicates tie on every coordinate — none dominates."""
        points = [(3.0, 1.0), (1.0, 2.0), (3.0, 1.0), (1.0, 2.0)]
        assert pareto_indices(points) == [0, 1, 2, 3]

    def test_duplicates_of_a_dominated_point_all_excluded(self):
        points = [(1.0, 1.0), (2.0, 2.0), (2.0, 2.0)]
        assert pareto_indices(points) == [0]

    def test_all_dominated_chain_keeps_only_minimum(self):
        """A totally ordered chain collapses to its single minimum."""
        chain = [(float(k), float(k)) for k in range(5, 0, -1)]
        assert pareto_indices(chain) == [4]

    def test_partial_tie_with_strict_coordinate_dominates(self):
        # (1, 1) ≤ (1, 2) everywhere and < in one coordinate.
        assert pareto_indices([(1.0, 2.0), (1.0, 1.0)]) == [1]

    def test_three_objectives(self):
        points = [
            (1.0, 2.0, 3.0),
            (2.0, 1.0, 3.0),
            (2.0, 2.0, 3.0),  # dominated by 0 (≤ everywhere, < in x)
            (2.0, 3.0, 4.0),  # dominated by 1
        ]
        assert pareto_indices(points) == [0, 1]


class TestSingleCornerGrid:
    def test_single_corner_grid(self):
        grid = corner_grid(vdd_factors=(1.0,), temps_c=(T_REF,))
        assert len(grid) == 1
        corner = grid[0]
        # The lone nominal corner is simultaneously the lo and hi
        # supply point; the canonical-name table labels it "typ".
        assert corner.name == "typ"
        assert corner.vdd_factor == 1.0
        assert corner.temp_c == T_REF

    def test_single_off_nominal_corner_named_systematically(self):
        grid = corner_grid(vdd_factors=(0.95,), temps_c=(60.0,))
        assert len(grid) == 1
        assert grid[0].name == "v0.95/t60"


class TestEvaluateCorners:
    def test_grid_covered(self, result):
        report = evaluate_corners(result)
        assert report.n_architectures >= 1
        assert {cell.corner.name for cell in report.cells} == {
            c.name for c in DEFAULT_CORNERS
        }

    def test_typ_corner_matches_nominal_metrics(self, result):
        """At the typ corner the winner reprices to its nominal numbers:
        same supply, same clock, same evaluator."""
        report = evaluate_corners(result)
        typ = [
            cell
            for cell in report.cells
            if cell.corner.name == "typ"
            and cell.source_vdd == result.vdd
            and cell.source_clk_ns == result.clk_ns
        ]
        assert typ, "winner missing from typ corner"
        cell = typ[0]
        assert cell.vdd == result.vdd
        assert cell.area == pytest.approx(result.metrics.area)
        assert cell.power == pytest.approx(result.metrics.power)
        assert cell.meets_timing

    def test_each_corner_has_a_frontier(self, result):
        report = evaluate_corners(result)
        for corner in DEFAULT_CORNERS:
            cells = [
                c
                for c in report.cells
                if c.corner.name == corner.name and c.meets_timing
            ]
            if cells:
                assert any(c.on_frontier for c in cells)
        assert report.frontier

    def test_hot_corner_costs_more_energy(self, result):
        report = evaluate_corners(
            result,
            corners=(
                OperatingCorner("ref", 1.0, T_REF),
                OperatingCorner("hot", 1.0, 125.0),
            ),
        )
        ref = [c for c in report.cells if c.corner.name == "ref"]
        hot = [c for c in report.cells if c.corner.name == "hot"]
        for r, h in zip(ref, hot):
            assert h.energy_per_sample > r.energy_per_sample
            assert h.clk_ns > r.clk_ns

    def test_subthreshold_corner_skipped(self, result):
        report = evaluate_corners(
            result, corners=(OperatingCorner("dead", 0.01, T_REF),)
        )
        assert report.cells == []

    def test_store_roundtrip(self, result, tmp_path):
        store = SynthesisStore(cache_dir=tmp_path)
        cold = evaluate_corners(result, store=store, store_prefix="t")
        warm = evaluate_corners(result, store=store, store_prefix="t")
        assert [
            (c.power, c.area, c.energy_per_sample) for c in cold.cells
        ] == [(c.power, c.area, c.energy_per_sample) for c in warm.cells]


class TestRenderCornerReport:
    def test_mentions_corners_and_stars_frontier(self, result):
        report = evaluate_corners(result)
        text = render_corner_report(report)
        for name in ("slow", "typ", "fast"):
            assert name in text
        assert "*" in text
