"""Unit tests for DFG/design validation."""

import pytest

from repro.dfg import DFG, Design, GraphBuilder, Operation, check_dfg, validate_dfg
from repro.errors import DFGError


class TestCheckDFG:
    def test_clean_graph(self, flat_dfg):
        assert check_dfg(flat_dfg) == []

    def test_undriven_port(self):
        g = DFG("g")
        g.add_input("x")
        g.add_op("a", Operation.ADD)
        g.add_output("o")
        g.connect("x", 0, "a", 0)
        g.connect("a", 0, "o", 0)
        problems = check_dfg(g)
        assert any("undriven" in p for p in problems)

    def test_no_outputs(self):
        g = DFG("g")
        g.add_input("x")
        problems = check_dfg(g)
        assert any("no primary outputs" in p for p in problems)

    def test_dead_operation(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        b.mult(x, y, name="dead")
        b.output("o", b.add(x, y))
        problems = check_dfg(b.build())
        assert any("dead" in p for p in problems)

    def test_validate_raises(self):
        g = DFG("g")
        g.add_input("x")
        with pytest.raises(DFGError, match="malformed"):
            validate_dfg(g)


class TestValidateDesign:
    def test_good_design(self, butterfly_design):
        from repro.dfg import validate_design

        validate_design(butterfly_design)

    def test_bad_subgraph_caught(self):
        from repro.dfg import validate_design

        d = Design("d")
        bad = DFG("bad")
        bad.add_input("x")
        d.add_dfg(bad, top=True)
        with pytest.raises(DFGError):
            validate_design(d)
