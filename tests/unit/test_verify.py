"""Unit tests for the differential verification oracle."""

import pytest

from repro.errors import VerificationError
from repro.power import speech_traces
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.verify import verify_solution


@pytest.fixture
def flat_solution(flat_design, library, flat_sim):
    env = SynthesisEnv(flat_design, library, "area")
    return initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)


class TestPassingSolutions:
    def test_flat_solution_verifies(self, flat_design, flat_solution, flat_sim):
        result = verify_solution(flat_design, flat_solution, sim=flat_sim)
        assert result.ok
        assert bool(result)
        assert result.n_samples == 32
        assert result.counterexample is None

    def test_hierarchical_solution_verifies(
        self, butterfly_design, library, butterfly_sim
    ):
        env = SynthesisEnv(butterfly_design, library, "area")
        solution = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        assert verify_solution(butterfly_design, solution, sim=butterfly_sim).ok

    def test_accepts_traces_instead_of_sim(self, flat_design, flat_solution):
        traces = speech_traces(flat_design.top, n=8, seed=11)
        result = verify_solution(flat_design, flat_solution, traces)
        assert result.ok
        assert result.n_samples == 8

    def test_needs_some_stimulus(self, flat_design, flat_solution):
        with pytest.raises(VerificationError):
            verify_solution(flat_design, flat_solution)


def _conflicted_binding(solution):
    """Corrupt *solution* by merging two registers whose lifetimes clash.

    A consistent rebinding still verifies (netlist, controller and plan
    are all rebuilt from the solution); what genuinely miscomputes in
    hardware is storage shared by two live values.  Returns None if no
    merge of two registers conflicts.
    """
    registers = sorted(solution.reg_signals)
    for src in registers:
        for dst in registers:
            if src == dst:
                continue
            corrupt = solution.clone()
            regs = {r: list(s) for r, s in corrupt.reg_signals.items()}
            regs[dst].extend(regs.pop(src))
            corrupt.reg_signals = regs
            if corrupt.register_conflicts():
                return corrupt
    return None


class TestCorruptedSolutions:
    def test_corrupted_register_binding_is_rejected(
        self, flat_design, flat_solution, flat_sim
    ):
        corrupt = _conflicted_binding(flat_solution)
        assert corrupt is not None, "expected a conflicting register merge"

        result = verify_solution(flat_design, corrupt, sim=flat_sim)
        assert not result.ok
        cx = result.counterexample
        assert cx is not None
        # The counterexample names a divergent output (or a structural
        # fault) at a concrete cycle, with a shrunk stimulus.
        assert cx.output in flat_design.top.outputs or cx.fault is not None
        assert cx.cycle >= 0
        assert set(cx.inputs) == set(flat_design.top.inputs)
        assert cx.describe()

    def test_consistent_rebinding_still_verifies(
        self, flat_design, flat_solution, flat_sim
    ):
        # Moving a signal between registers without a lifetime overlap
        # yields a different but correct architecture: the oracle must
        # not flag it (no false positives on legal bindings).
        rebound = flat_solution.clone()
        regs = {r: list(s) for r, s in rebound.reg_signals.items()}
        donors = sorted(r for r in regs if regs[r])
        moved = False
        for src in donors:
            for dst in donors:
                if src == dst:
                    continue
                trial = flat_solution.clone()
                t_regs = {r: list(s) for r, s in trial.reg_signals.items()}
                t_regs[dst].extend(t_regs.pop(src))
                trial.reg_signals = t_regs
                if not trial.register_conflicts():
                    rebound = trial
                    moved = True
                    break
            if moved:
                break
        if not moved:
            pytest.skip("every register merge conflicts on this schedule")
        assert verify_solution(flat_design, rebound, sim=flat_sim).ok

    def test_shrinking_can_be_disabled(self, flat_design, flat_solution, flat_sim):
        corrupt = _conflicted_binding(flat_solution)
        assert corrupt is not None
        result = verify_solution(flat_design, corrupt, sim=flat_sim, shrink=False)
        assert not result.ok


class TestVerifyMovesWiring:
    def test_improvement_under_verification(self, flat_design, library, flat_sim):
        from repro.synthesis.improve import improve_solution

        config = SynthesisConfig(verify_moves=True, max_passes=2, max_moves=4)
        env = SynthesisEnv(flat_design, library, "area", config)
        start = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        improved = improve_solution(env, start, flat_sim)
        assert verify_solution(flat_design, improved, sim=flat_sim).ok
        if env.telemetry.moves_committed:
            assert env.telemetry.verify_checks > 0
        assert env.telemetry.verify_failures == 0

    def test_synthesis_result_verify_accessor(self, flat_design):
        from repro.synthesis.api import synthesize

        result = synthesize(
            flat_design, laxity_factor=1.6, objective="area", n_samples=8
        )
        check = result.verify()
        assert check.ok
        assert result.telemetry.verify_checks == 1
        assert result.telemetry.verify_failures == 0

    def test_telemetry_counters_merge_and_export(self):
        from repro.telemetry import Telemetry

        a, b = Telemetry(), Telemetry()
        a.verify_checks, a.verify_failures = 3, 1
        b.verify_checks = 2
        a.merge(b)
        assert a.verify_checks == 5
        assert a.verify_failures == 1
        assert a.as_dict()["verify"] == {"checks": 5, "failures": 1}
