"""Unit tests for the headline-claims summary (synthetic sweep data)."""

import pytest

from repro.reporting import SweepResults, compute_claims, render_claims

from .test_reporting_render import make_cell


@pytest.fixture
def sweep():
    results = SweepResults()
    for circuit in ("alpha", "beta"):
        for laxity in (1.2, 2.2):
            results.cells[(circuit, laxity)] = make_cell(circuit, laxity)
    return results


class TestComputeClaims:
    def test_empty_sweep_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compute_claims(SweepResults())

    def test_max_reduction(self, sweep):
        claims = compute_claims(sweep)
        # Stub cells: hier power-opt power is 4.5 of a base power 10.
        assert claims.max_power_reduction == pytest.approx(10.0 / 4.5)

    def test_area_overhead_at_best(self, sweep):
        claims = compute_claims(sweep)
        # Stub: hier power-opt area 160 over base area 100 -> +60 %.
        assert claims.area_overhead_at_best == pytest.approx(0.6)

    def test_means(self, sweep):
        claims = compute_claims(sweep)
        assert claims.hier_vs_flat_power_opt == pytest.approx(4.5 / 4.0)
        assert claims.hier_vs_flat_area_opt == pytest.approx(105.0 / 100.0)


class TestRenderClaims:
    def test_table_contains_paper_values(self, sweep):
        text = render_claims(sweep)
        assert "6.7x" in text
        assert "-13.3%" in text
        assert "+5.6%" in text
        assert "measured" in text
