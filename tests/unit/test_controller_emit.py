"""Unit tests for FSM controllers and netlist/FSM emission."""

from repro.rtl import (
    ComponentKind,
    ControllerState,
    DatapathNetlist,
    FSMController,
    MuxSelect,
    RegisterLoad,
    UnitStart,
    emit_controller,
    emit_netlist,
)


def tiny_netlist() -> DatapathNetlist:
    n = DatapathNetlist("tiny")
    n.add_component("in0", ComponentKind.PORT, "in")
    n.add_component("out0", ComponentKind.PORT, "out")
    n.add_component("r0", ComponentKind.REGISTER, "reg1")
    n.add_component("r1", ComponentKind.REGISTER, "reg1")
    n.add_component("fu0", ComponentKind.FUNCTIONAL, "add1")
    n.connect("in0", 0, "r0", 0)
    n.connect("r0", 0, "fu0", 0)
    n.connect("r1", 0, "fu0", 1)
    n.connect("fu0", 0, "r1", 0)
    n.connect("r1", 0, "out0", 0)
    return n


def tiny_controller() -> FSMController:
    states = [
        ControllerState(0, loads=[RegisterLoad("r0", "in0", 0)]),
        ControllerState(
            1,
            starts=[UnitStart("fu0", "add")],
            selects=[MuxSelect("fu0", 0, "r0", 0)],
        ),
        ControllerState(2, loads=[RegisterLoad("r1", "fu0", 0)]),
        ControllerState(3),
    ]
    return FSMController("tiny_fsm", states)


class TestController:
    def test_state_count(self):
        c = tiny_controller()
        assert c.n_states == 4
        assert c.state(1).starts[0].unit == "fu0"

    def test_idle_detection(self):
        c = tiny_controller()
        assert c.state(3).is_idle()
        assert not c.state(0).is_idle()

    def test_control_signal_census(self):
        c = tiny_controller()
        assert c.n_control_signals() == 4


class TestEmission:
    def test_netlist_text(self):
        text = emit_netlist(tiny_netlist())
        assert text.startswith("module tiny")
        assert "input  [15:0] in0;" in text
        assert "add1 fu0" in text
        assert "reg1 r0" in text
        assert text.rstrip().endswith("endmodule")

    def test_mux_emitted_for_multi_source(self):
        n = tiny_netlist()
        n.connect("r1", 0, "fu0", 0)  # second source on fu0.in0
        text = emit_netlist(n)
        assert "mux2 mux_fu0_0" in text

    def test_controller_text(self):
        text = emit_controller(tiny_controller())
        assert "states 4" in text
        assert "start fu0 op=add" in text
        assert "load r1 <- fu0.out0" in text
        assert "nop" in text
