"""Unit tests for run telemetry (counters, merging, rendering)."""

import pickle

from repro.reporting import render_stats
from repro.telemetry import Telemetry, move_family


class TestMoveFamily:
    def test_kind_collapses_to_family(self):
        assert move_family("A-replace-cell") == "A"
        assert move_family("C-share-fu") == "C"

    def test_bare_family_unchanged(self):
        assert move_family("B") == "B"


class TestCounters:
    def test_moves_grouped_by_family(self):
        t = Telemetry()
        t.count_move_tried("A-replace-cell")
        t.count_move_tried("A-replace-module")
        t.count_move_tried("D-split-fu", n=3)
        t.count_move_committed("A-replace-cell")
        assert t.moves_tried == {"A": 2, "D": 3}
        assert t.moves_committed == {"A": 1}

    def test_stage_time_accumulates(self):
        t = Telemetry()
        t.add_time("improve", 1.5)
        t.add_time("improve", 0.5)
        t.add_time("simulate", 0.25)
        assert t.stage_s == {"improve": 2.0, "simulate": 0.25}

    def test_hit_rate(self):
        t = Telemetry()
        assert t.cache_hit_rate == 0.0  # no division by zero when idle
        t.evaluations = 4
        t.cache_hits = 1
        assert t.cache_hit_rate == 0.25


class TestMerge:
    def test_merge_sums_everything(self):
        a = Telemetry(evaluations=10, cache_hits=3, cache_misses=7,
                      points_explored=2, points_skipped=1)
        a.count_move_tried("A-x")
        a.add_time("improve", 1.0)
        b = Telemetry(evaluations=5, cache_hits=2, cache_misses=3,
                      points_explored=1)
        b.count_move_tried("A-y", n=4)
        b.count_move_committed("C-share")
        b.add_time("improve", 0.5)
        b.add_time("initial", 0.1)

        assert a.merge(b) is a
        assert a.evaluations == 15
        assert a.cache_hits == 5
        assert a.cache_misses == 10
        assert a.points_explored == 3
        assert a.points_skipped == 1
        assert a.moves_tried == {"A": 5}
        assert a.moves_committed == {"C": 1}
        assert a.stage_s == {"improve": 1.5, "initial": 0.1}

    def test_merge_leaves_other_untouched(self):
        a, b = Telemetry(), Telemetry(evaluations=3)
        a.merge(b)
        assert b.evaluations == 3
        assert a.moves_tried is not b.moves_tried

    def test_picklable(self):
        """Workers of the parallel sweep ship telemetry back via pickle."""
        t = Telemetry(evaluations=2)
        t.count_move_tried("B-resynth")
        clone = pickle.loads(pickle.dumps(t))
        assert clone == t


class TestAsDict:
    def test_plain_data(self):
        t = Telemetry(evaluations=4, cache_hits=1, cache_misses=3)
        t.count_move_tried("C-share-reg")
        t.add_time("sweep", 0.123456789)
        data = t.as_dict()
        assert data["evaluations"] == 4
        assert data["cache_hit_rate"] == 0.25
        assert data["moves_tried"] == {"C": 1}
        assert data["stage_s"]["sweep"] == 0.123457


class TestRenderStats:
    def test_render_contains_counters(self):
        t = Telemetry(evaluations=100, cache_hits=25, cache_misses=75,
                      points_explored=4)
        t.count_move_tried("A-replace-cell", n=10)
        t.count_move_committed("A-replace-cell", n=2)
        t.add_time("improve", 1.5)
        text = render_stats(t)
        assert "evaluations" in text
        assert "25.0%" in text
        assert "10 tried / 2 committed" in text
        assert "time: improve" in text

    def test_render_empty_telemetry(self):
        assert "evaluations" in render_stats(Telemetry())
