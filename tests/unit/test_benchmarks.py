"""Unit tests for the benchmark suite designs."""

import pytest

from repro.bench_suite import (
    BENCHMARKS,
    TABLE3_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)
from repro.dfg import Operation, flatten, op_histogram, validate_design


class TestRegistry:
    def test_all_names_resolve(self):
        for name in benchmark_names():
            design = get_benchmark(name)
            assert design.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("fft4096")

    def test_table3_subset(self):
        assert set(TABLE3_BENCHMARKS) <= set(BENCHMARKS)
        assert len(TABLE3_BENCHMARKS) == 6


class TestStructure:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_design_valid(self, name):
        validate_design(get_benchmark(name))

    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_flattenable(self, name):
        flat = flatten(get_benchmark(name))
        assert flat.hier_nodes() == []
        assert len(flat.op_nodes()) >= 10

    @pytest.mark.parametrize(
        "name", [n for n in sorted(BENCHMARKS) if n != "paulin"]
    )
    def test_hierarchical_designs_have_depth(self, name):
        assert get_benchmark(name).depth() >= 2


class TestKnownShapes:
    def test_paulin_op_mix(self):
        """The classic diffeq body: 6 mults, 2 adds, 2 subs, 1 compare."""
        flat = flatten(get_benchmark("paulin"))
        hist = op_histogram(flat)
        assert hist[Operation.MULT] == 6
        assert hist[Operation.ADD] == 2
        assert hist[Operation.SUB] == 2
        assert hist[Operation.LT] == 1

    def test_hier_paulin_unrolls(self):
        design = get_benchmark("hier_paulin")
        iters = [n for n in design.top.hier_nodes()]
        assert len(iters) == 3
        assert all(n.behavior == "diffeq_iter" for n in iters)

    def test_dct_block_mix(self):
        design = get_benchmark("dct")
        behaviors = [n.behavior for n in design.top.hier_nodes()]
        assert behaviors.count("butterfly") == 9
        assert behaviors.count("rotator") == 3

    def test_iir_is_biquad_cascade(self):
        design = get_benchmark("iir")
        assert all(
            n.behavior == "biquad" for n in design.top.hier_nodes()
        )

    def test_lat_stage_count(self):
        design = get_benchmark("lat")
        stages = [n for n in design.top.hier_nodes()]
        assert len(stages) == 4

    def test_avenhaus_section_is_rich(self):
        """9 multiplications per full state-space section."""
        from repro.bench_suite import avenhaus_section_dfg

        hist = op_histogram(avenhaus_section_dfg())
        assert hist[Operation.MULT] == 9
        assert hist[Operation.ADD] == 6

    def test_test1_has_anisomorphic_variants(self):
        design = get_benchmark("test1")
        variants = design.variants("dot3")
        assert len(variants) == 2
