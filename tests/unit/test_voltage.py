"""Unit tests for the CMOS voltage-scaling model."""

import pytest

from repro.library import delay_scale, energy_scale, min_feasible_vdd
from repro.library.voltage import (
    T_REF,
    V_FLOOR,
    temperature_delay_scale,
    temperature_energy_scale,
    vdd_for_delay_scale,
)


class TestDelayScale:
    def test_reference_is_unity(self):
        assert delay_scale(5.0) == pytest.approx(1.0)

    def test_monotone_decreasing_supply_increases_delay(self):
        assert delay_scale(3.3) > 1.0
        assert delay_scale(2.4) > delay_scale(3.3)

    def test_below_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            delay_scale(0.5)


class TestEnergyScale:
    def test_quadratic(self):
        assert energy_scale(2.5) == pytest.approx(0.25)
        assert energy_scale(5.0) == pytest.approx(1.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            energy_scale(0.0)


class TestInverse:
    def test_roundtrip(self):
        for v in (4.2, 3.3, 2.4, 1.5):
            scale = delay_scale(v)
            recovered = vdd_for_delay_scale(scale)
            assert recovered == pytest.approx(v, abs=1e-4)

    def test_target_below_one_impossible(self):
        assert vdd_for_delay_scale(0.9) is None

    def test_huge_target_clamps_to_floor(self):
        assert vdd_for_delay_scale(1e9) == V_FLOOR

    def test_result_meets_target(self):
        v = vdd_for_delay_scale(2.0)
        assert v is not None
        assert delay_scale(v) <= 2.0 + 1e-6


class TestMinFeasibleVdd:
    def test_tight_budget_requires_full_supply(self):
        assert min_feasible_vdd(100.0, 100.0) == 5.0

    def test_loose_budget_allows_low_supply(self):
        assert min_feasible_vdd(100.0, 1000.0) == 2.4

    def test_impossible_budget(self):
        assert min_feasible_vdd(100.0, 50.0) is None


class TestTemperatureDerating:
    def test_reference_temperature_is_unity(self):
        assert temperature_delay_scale(T_REF) == 1.0
        assert temperature_energy_scale(T_REF) == 1.0

    def test_hot_junction_slower_and_hungrier(self):
        assert temperature_delay_scale(125.0) > 1.0
        assert temperature_energy_scale(125.0) > 1.0

    def test_cold_junction_faster_and_leaner(self):
        assert temperature_delay_scale(-40.0) < 1.0
        assert temperature_energy_scale(-40.0) < 1.0

    def test_monotone_in_temperature(self):
        temps = [-40.0, 0.0, T_REF, 85.0, 125.0]
        delays = [temperature_delay_scale(t) for t in temps]
        energies = [temperature_energy_scale(t) for t in temps]
        assert delays == sorted(delays)
        assert energies == sorted(energies)

    def test_delay_more_sensitive_than_energy(self):
        # The derating model makes timing the dominant corner effect.
        assert (temperature_delay_scale(125.0) - 1.0) > (
            temperature_energy_scale(125.0) - 1.0
        )

    def test_custom_reference(self):
        assert temperature_delay_scale(60.0, tref=60.0) == 1.0
        assert temperature_energy_scale(60.0, tref=60.0) == 1.0
