"""Unit tests for the CMOS voltage-scaling model."""

import pytest

from repro.library import delay_scale, energy_scale, min_feasible_vdd
from repro.library.voltage import V_FLOOR, vdd_for_delay_scale


class TestDelayScale:
    def test_reference_is_unity(self):
        assert delay_scale(5.0) == pytest.approx(1.0)

    def test_monotone_decreasing_supply_increases_delay(self):
        assert delay_scale(3.3) > 1.0
        assert delay_scale(2.4) > delay_scale(3.3)

    def test_below_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            delay_scale(0.5)


class TestEnergyScale:
    def test_quadratic(self):
        assert energy_scale(2.5) == pytest.approx(0.25)
        assert energy_scale(5.0) == pytest.approx(1.0)

    def test_positive_required(self):
        with pytest.raises(ValueError):
            energy_scale(0.0)


class TestInverse:
    def test_roundtrip(self):
        for v in (4.2, 3.3, 2.4, 1.5):
            scale = delay_scale(v)
            recovered = vdd_for_delay_scale(scale)
            assert recovered == pytest.approx(v, abs=1e-4)

    def test_target_below_one_impossible(self):
        assert vdd_for_delay_scale(0.9) is None

    def test_huge_target_clamps_to_floor(self):
        assert vdd_for_delay_scale(1e9) == V_FLOOR

    def test_result_meets_target(self):
        v = vdd_for_delay_scale(2.0)
        assert v is not None
        assert delay_scale(v) <= 2.0 + 1e-6


class TestMinFeasibleVdd:
    def test_tight_budget_requires_full_supply(self):
        assert min_feasible_vdd(100.0, 100.0) == 5.0

    def test_loose_budget_allows_low_supply(self):
        assert min_feasible_vdd(100.0, 1000.0) == 2.4

    def test_impossible_budget(self):
        assert min_feasible_vdd(100.0, 50.0) is None
