"""Unit tests for incremental (delta) cost evaluation.

The contract under test is *bit-identity*: pricing a candidate by delta
against the current solution's per-term breakdown must produce exactly
the Metrics a from-scratch evaluation produces — same floats, not
approximately equal floats.
"""

import pytest

from repro.errors import SynthesisError
from repro.synthesis.caching import HashedKey, LRUCache
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.costs import EvaluationContext
from repro.synthesis.improve import _best
from repro.synthesis.incremental import evaluate_solution
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)


@pytest.fixture
def setup(flat_design, library, flat_sim):
    env = SynthesisEnv(flat_design, library, "power", SynthesisConfig())
    sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
    return env, sol, flat_sim


def _all_candidates(env, sol, sim):
    out = []
    out += type_a_b_candidates(env, sol, sim, frozenset())
    out += sharing_candidates(env, sol, sim, frozenset())
    out += splitting_candidates(env, sol, sim, frozenset())
    return out


class TestHashedKey:
    def test_equal_values_equal_keys(self):
        assert HashedKey((1, "a")) == HashedKey((1, "a"))
        assert hash(HashedKey((1, "a"))) == hash(HashedKey((1, "a")))

    def test_different_values_differ(self):
        assert HashedKey((1, "a")) != HashedKey((1, "b"))

    def test_usable_as_dict_key(self):
        d = {HashedKey((1, 2)): "x"}
        assert d[HashedKey((1, 2))] == "x"


class TestLRUPeek:
    def test_peek_does_not_count_or_refresh(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.peek("a") == 1
        assert cache.peek("missing") is None
        assert cache.hits == 0 and cache.misses == 0
        # "a" was NOT refreshed by peek, so it is still the LRU entry.
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache


class TestFingerprintMemo:
    def test_key_cached_until_mutation(self, setup):
        _env, sol, _sim = setup
        k1 = sol.fingerprint_key()
        assert sol.fingerprint_key() is k1
        epoch = sol.epoch
        sol.invalidate()
        assert sol.epoch == epoch + 1
        k2 = sol.fingerprint_key()
        assert k2 is not k1
        assert k2 == k1  # structure unchanged, only the memo was dropped

    def test_clone_does_not_share_memo(self, setup):
        _env, sol, _sim = setup
        sol.fingerprint_key()
        clone = sol.clone()
        assert clone.fingerprint_key() == sol.fingerprint_key()


class TestDeltaBitIdentity:
    def test_every_candidate_prices_identically(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        candidates = _all_candidates(env, sol, sim)
        assert candidates
        for cand in candidates:
            delta = evaluate_solution(ctx, cand.solution, base)
            full = evaluate_solution(ctx, cand.solution, None)
            assert delta[0] == full[0], cand.description

    def test_local_moves_reuse_terms(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        footprinted = [
            c for c in _all_candidates(env, sol, sim) if c.footprint is not None
        ]
        assert footprinted
        reuse = 0
        for cand in footprinted:
            _m, _b, reused, terms = evaluate_solution(ctx, cand.solution, base)
            assert 0 <= reused <= terms
            reuse += reused
        assert reuse > 0  # the delta engine earns its keep on local moves

    def test_cell_swap_reuses_touched_activity(self, setup, library):
        env, sol, sim = setup
        ctx = env.context(sim)
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        # A cell swap keeps the instance's operand streams, so even the
        # touched instance's *activity* is reused — only the energy
        # arithmetic is replayed with the new cell.
        cands = [
            c
            for c in type_a_b_candidates(env, sol, sim, frozenset())
            if c.kind == "A-cell"
        ]
        assert cands
        cand = cands[0]
        (inst_id,) = cand.touched
        _m, after, reused, terms = evaluate_solution(ctx, cand.solution, base)
        if after.fu[inst_id][0] == base.fu[inst_id][0]:
            assert after.fu[inst_id][1] == base.fu[inst_id][1]

    def test_sharing_changes_touched_keys(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        # Merging two units interleaves their operand streams: the
        # surviving instance's activity key must change.
        cands = [
            c
            for c in sharing_candidates(env, sol, sim, frozenset())
            if c.kind == "C-share-fu"
        ]
        if not cands:
            pytest.skip("flat design offers no FU sharing here")
        cand = cands[0]
        _m, after, _r, _t = evaluate_solution(ctx, cand.solution, base)
        changed = [
            i for i in cand.touched
            if i in base.fu and i in after.fu
            and after.fu[i][0] != base.fu[i][0]
        ]
        assert changed


class TestFallbackTriggers:
    def test_other_operating_point_discards_base(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        other = sol.clone()
        other.vdd = 3.3
        _m, _b, reused, _t = evaluate_solution(ctx, other, base)
        assert reused == 0  # header mismatch: nothing may be reused

    def test_schedule_length_enters_arithmetic_not_keys(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        m1, base, _r, _t = evaluate_solution(ctx, sol, None)
        slower = sol.clone()
        slower.clk_ns = sol.clk_ns * 2
        slower.invalidate()
        if slower.schedule().length == sol.schedule().length:
            pytest.skip("clock change did not move the schedule length")
        m2, b2, _r, _t = evaluate_solution(ctx, slower, None)
        # Write activities do not depend on the schedule length, so the
        # keys stay equal — the idle-clocking arithmetic is what gets
        # replayed (register energy must move with the length).
        for reg_id in base.reg:
            assert b2.reg[reg_id][0] == base.reg[reg_id][0]
        assert m2.report.register_energy != m1.report.register_energy

    def test_global_moves_have_no_footprint(self, setup):
        env, sol, sim = setup
        for cand in _all_candidates(env, sol, sim):
            if cand.kind in ("B-resynth", "C-chain", "C-chain3", "C-embed",
                             "A-module", "A-remerge", "C-share-module",
                             "D-unchain"):
                assert cand.footprint is None, cand.kind
            if cand.kind in ("A-cell", "C-share-fu", "C-share-reg",
                             "D-split-fu", "D-split-reg"):
                assert cand.footprint is not None, cand.kind


class TestEvaluateTelemetry:
    def test_miss_classification(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        tel = ctx.telemetry
        ctx.evaluate(sol)
        assert tel.full_evals == 1 and tel.delta_hits == 0
        base = ctx.breakdown_of(sol)
        assert base is not None
        cands = [
            c
            for c in type_a_b_candidates(env, sol, sim, frozenset())
            if c.kind == "A-cell"
        ]
        assert cands
        ctx.evaluate(cands[0].solution, base=base)
        assert tel.delta_hits == 1
        assert tel.delta_hit_rate == pytest.approx(0.5)

    def test_cache_hit_skips_classification(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        tel = ctx.telemetry
        ctx.evaluate(sol)
        ctx.evaluate(sol)
        assert tel.cache_hits == 1
        assert tel.full_evals == 1  # the hit is not re-classified


class TestValidateMode:
    def test_tampered_base_raises(self, setup, flat_sim):
        env, sol, sim = setup
        ctx = EvaluationContext(
            flat_sim, (), "power", validate_incremental=True
        )
        _m, base, _r, _t = evaluate_solution(ctx, sol, None)
        # Corrupt one reusable term's stored float, keeping its key: the
        # delta path now mis-prices, and validation must catch it.
        cands = [
            c
            for c in type_a_b_candidates(env, sol, sim, frozenset())
            if c.kind == "A-cell"
        ]
        assert cands
        (touched,) = cands[0].touched
        victim = next(i for i in base.fu if i != touched)
        key, activity, sig, energy = base.fu[victim]
        base.fu[victim] = (key, activity + 1.0, sig, energy + 1.0)
        with pytest.raises(SynthesisError, match="diverged"):
            ctx.evaluate(cands[0].solution, base=base)

    def test_clean_base_passes(self, setup, flat_sim):
        env, sol, sim = setup
        ctx = EvaluationContext(
            flat_sim, (), "power", validate_incremental=True
        )
        ctx.evaluate(sol)
        base = ctx.breakdown_of(sol)
        for cand in _all_candidates(env, sol, sim):
            if cand.footprint is not None:
                ctx.evaluate(cand.solution, base=base)


class TestParallelScoring:
    def test_workers_match_serial_exactly(self, setup, flat_sim):
        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)
        assert len(candidates) > 2

        def score(workers):
            ctx = EvaluationContext(flat_sim, (), "power")
            ctx.evaluate(sol)
            base = ctx.breakdown_of(sol)
            best = _best(ctx, candidates, base=base, workers=workers)
            return best, ctx.telemetry

        serial, tel1 = score(1)
        parallel, tel4 = score(4)
        assert serial is not None and parallel is not None
        assert serial.candidate.description == parallel.candidate.description
        assert serial.cost_after == parallel.cost_after
        assert tel1.as_dict() == tel4.as_dict()

    def test_order_independent_tiebreak(self, setup, flat_sim):
        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)

        def winner(cands):
            ctx = EvaluationContext(flat_sim, (), "power")
            best = _best(ctx, cands)
            return best.candidate.description

        assert winner(candidates) == winner(list(reversed(candidates)))


class TestBatchedPricing:
    """Batched activity pricing is bit-identical to unbatched pricing."""

    def _price_all(self, flat_sim, sol, candidates, batch, validate=False):
        from repro.power import reset_activity_caches

        reset_activity_caches()
        ctx = EvaluationContext(
            flat_sim,
            (),
            "power",
            batch_pricing=batch,
            validate_incremental=validate,
        )
        ctx.evaluate(sol)
        base = ctx.breakdown_of(sol)
        best = _best(ctx, candidates, base=base)
        metrics = [
            ctx.evaluate(
                c.solution, base=base if c.footprint is not None else None
            )
            for c in candidates
        ]
        return best, metrics, ctx.telemetry

    def test_batch_off_vs_on_bitwise(self, setup, flat_sim):
        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)
        assert len(candidates) > 2
        off_best, off_metrics, _ = self._price_all(
            flat_sim, sol, candidates, batch=False
        )
        on_best, on_metrics, _ = self._price_all(
            flat_sim, sol, candidates, batch=True
        )
        assert off_best.candidate.description == on_best.candidate.description
        assert off_best.cost_after == on_best.cost_after
        for off, on in zip(off_metrics, on_metrics):
            assert (off.area, off.power, off.energy_per_sample) == (
                on.area,
                on.power,
                on.energy_per_sample,
            )

    def test_batch_keeps_accounting_serial(self, setup, flat_sim):
        """evaluate_batch stashes speculative results; the serial pass
        must still report the exact unbatched telemetry."""
        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)
        _, _, tel_off = self._price_all(flat_sim, sol, candidates, batch=False)
        _, _, tel_on = self._price_all(flat_sim, sol, candidates, batch=True)
        assert tel_off.as_dict() == tel_on.as_dict()

    def test_batch_under_validate_mode(self, setup, flat_sim):
        """The validate_incremental cross-check re-prices every batched
        delta from scratch and must find zero divergence."""
        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)
        best, _, _ = self._price_all(
            flat_sim, sol, candidates, batch=True, validate=True
        )
        assert best is not None

    def test_cache_reset_mid_sweep_is_bit_identical(self, setup, flat_sim):
        """Dropping the activity memos between sweeps must not change a
        single float: the caches are pure memoization."""
        from repro.power import reset_activity_caches
        from repro.synthesis.incremental import _reset_energy_memos

        env, sol, sim = setup
        candidates = _all_candidates(env, sol, sim)
        _, warm, _ = self._price_all(flat_sim, sol, candidates, batch=True)
        reset_activity_caches()
        _reset_energy_memos()
        _, cold, _ = self._price_all(flat_sim, sol, candidates, batch=True)
        for w, c in zip(warm, cold):
            assert (w.area, w.power, w.energy_per_sample) == (
                c.area,
                c.power,
                c.energy_per_sample,
            )
