"""Unit tests for hierarchy derivation from flat DFGs (subproblem (i))."""

import numpy as np
import pytest

from repro.bench_suite import get_benchmark
from repro.dfg import (
    Design,
    clusters_isomorphic,
    convex_clusters,
    flatten,
    hierarchize,
    validate_design,
)
from repro.power import simulate_dfg, simulate_subgraph, white_traces


class TestConvexClusters:
    def test_every_operation_covered_once(self, flat_dfg):
        clusters = convex_clusters(flat_dfg, max_cluster_size=4)
        covered = [n for cluster in clusters for n in cluster]
        expected = sorted(n.node_id for n in flat_dfg.op_nodes())
        assert sorted(covered) == expected

    def test_size_bound_respected(self):
        flat = flatten(get_benchmark("lat"))
        for cluster in convex_clusters(flat, max_cluster_size=4):
            assert len(cluster) <= 4

    def test_convexity(self):
        """No path may leave a cluster and re-enter it."""
        import networkx as nx

        from repro.dfg.partition import _is_convex, _op_graph

        flat = flatten(get_benchmark("iir"))
        graph = _op_graph(flat)
        for cluster in convex_clusters(flat, max_cluster_size=6):
            assert _is_convex(graph, set(cluster))

    def test_rejects_hierarchical_input(self, butterfly_design):
        from repro.errors import DFGError

        with pytest.raises(DFGError, match="flat"):
            convex_clusters(butterfly_design.top)


class TestIsomorphismFolding:
    def test_identical_stage_bodies_fold(self):
        """lat's four identical stages collapse onto shared behaviors."""
        flat = flatten(get_benchmark("lat"))
        design = hierarchize(flat, max_cluster_size=4)
        top_hier = design.top.hier_nodes()
        assert top_hier  # clustering found blocks
        behaviors = {n.behavior for n in top_hier}
        # Folding must find at least one repeated behavior.
        assert len(behaviors) < len(top_hier)

    def test_isomorphism_is_port_exact(self):
        from repro.dfg import GraphBuilder

        def body(swap: bool):
            b = GraphBuilder("c")
            x, y = b.inputs("in0", "in1")
            if swap:
                b.output("out0", b.sub(y, x))
            else:
                b.output("out0", b.sub(x, y))
            return b.build()

        assert clusters_isomorphic(body(False), body(False))
        # sub(y, x) differs from sub(x, y): port-exact matching refuses.
        assert not clusters_isomorphic(body(False), body(True))


class TestHierarchize:
    @pytest.mark.parametrize("bench_name", ["lat", "iir", "paulin", "test1"])
    def test_roundtrip_simulation(self, bench_name):
        """Flatten(hierarchize(flat)) is functionally identical to flat."""
        flat = flatten(get_benchmark(bench_name))
        design = hierarchize(flat, max_cluster_size=6)
        validate_design(design)

        reflat = flatten(design)
        traces = white_traces(flat, n=24, seed=4)
        sim_orig = simulate_dfg(flat, traces)
        wrapper = Design("w")
        wrapper.add_dfg(reflat, top=True)
        sim_hier = simulate_dfg(reflat, traces)
        for out in flat.outputs:
            sig_o = flat.in_edges(out)[0].signal
            sig_h = reflat.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_orig.stream((), sig_o), sim_hier.stream((), sig_h)
            )

    def test_interface_preserved(self):
        flat = flatten(get_benchmark("lat"))
        design = hierarchize(flat)
        assert design.top.inputs == flat.inputs
        assert design.top.outputs == flat.outputs

    def test_small_clusters_stay_flat(self, flat_dfg):
        design = hierarchize(flat_dfg, max_cluster_size=8, min_cluster_size=10)
        assert design.top.hier_nodes() == []
        assert len(design.top.op_nodes()) == len(flat_dfg.op_nodes())

    def test_derived_design_synthesizes(self):
        """The derived hierarchy feeds straight into the synthesizer."""
        from repro.synthesis import SynthesisConfig, synthesize

        flat = flatten(get_benchmark("lat"))
        design = hierarchize(flat, max_cluster_size=4)
        result = synthesize(
            design,
            laxity_factor=2.5,
            objective="area",
            config=SynthesisConfig(max_moves=4, max_passes=1, n_clocks=1),
        )
        assert result.metrics.feasible
