"""Unit tests for trace report rendering on a hand-built trace.

The synthetic trace below mimics a two-pass single-point run with a
negative-gain move inside the committed prefix — the variable-depth
behaviour the report exists to explain.
"""

from __future__ import annotations

import pytest

from repro.trace import SCHEMA_VERSION
from repro.trace.report import render_profile, render_report, run_overview


def _step(p, s, kind, move, cost, gain, committed_hint=0):
    return {
        "k": "step", "point": 0, "pass": p, "step": s,
        "kind": kind, "move": move, "cost": cost, "gain": gain,
        "d_power": gain * 0.8, "d_area": -1.0, "d_cycles": 0,
        "tried": {"A": 3, "C": 2, "D": 1},
        "eval": {"n": 6, "hits": 4, "misses": 2},
    }


def _trace(timings=False):
    dur = {"dur_ns": 1_000_000} if timings else {}
    events = [
        {"k": "run_start", "schema": SCHEMA_VERSION, "design": "toy",
         "objective": "power", "sampling_ns": 100.0, "flattened": False,
         "n_points": 1, "config": {}},
        {"k": "point_start", "point": 0, "vdd": 5.0, "clk_ns": 10.0},
        {"k": "pass_start", "point": 0, "pass": 0},
        _step(0, 0, "A-swap", "swap u1 to add_fast", 2.0, 0.5),
        _step(0, 1, "C-share-fu", "share u2 into u3", 2.4, -0.4),
        _step(0, 2, "D-split", "split u4", 1.2, 1.2),
        {"k": "pass_end", "point": 0, "pass": 0, "steps": 3,
         "committed": 3, "cost": 1.2, **dur},
        {"k": "pass_start", "point": 0, "pass": 1},
        _step(1, 0, "B-resynth", "resynthesize dct_sub", 1.1, 0.1),
        {"k": "pass_end", "point": 0, "pass": 1, "steps": 1,
         "committed": 1, "cost": 1.1, **dur},
        {"k": "point_end", "point": 0, "status": "explored",
         "feasible": True, "cost": 1.1, "area": 10.0, "power": 0.5,
         "cycles": 8, **dur},
        {"k": "run_end",
         "winner": {"point": 0, "vdd": 5.0, "clk_ns": 10.0,
                    "cost": 1.1, "area": 10.0, "power": 0.5},
         "events_dropped": 0,
         **({"stage_s": {"improve": 0.5}} if timings else {})},
    ]
    return events


def test_report_shows_passes_rollup_and_negative_gain_note():
    text = render_report(_trace())
    assert "trace: toy — objective power" in text
    assert "winner: point 0 (Vdd 5.00 V, clock 10.00 ns)" in text
    assert "point 0 pass 0: 3 moves, committed prefix 3" in text
    assert "negative-gain moves in the committed prefix: 1" in text
    # Per-family attribution table covers all four families.
    for label in ("A (module selection)", "B (resynthesis)",
                  "C (sharing/embedding)", "D (splitting)"):
        assert label in text
    # Cache provenance rollup: 4 steps x (6 evals, 4 hits).
    assert "cost evaluations while pricing: 24 (16 cache hits" in text


def test_report_rejects_wrong_schema_and_missing_header():
    bad = _trace()
    bad[0]["schema"] = SCHEMA_VERSION + 1
    with pytest.raises(ValueError, match="schema"):
        render_report(bad)
    with pytest.raises(ValueError, match="run_start"):
        render_report([{"k": "step"}])


def test_report_handles_partial_trace():
    partial = _trace()[:-1]  # no run_end
    text = render_report(partial)
    assert "run did not finish" in text
    assert "pass 0" in text


def test_run_overview_counts():
    overview = run_overview(_trace())
    assert overview["design"] == "toy"
    assert overview["n_steps"] == 4
    assert overview["n_passes"] == 2
    assert overview["winner"]["cost"] == 1.1


def test_profile_requires_timings():
    assert "no timing spans" in render_profile(_trace(timings=False))
    timed = render_profile(_trace(timings=True))
    assert "wall-clock by stage" in timed
    assert "slowest improvement passes" in timed
