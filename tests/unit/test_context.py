"""Unit tests for the synthesis environment and behavior aliasing."""

from repro.rtl import DatapathNetlist, Profile, RTLModule
from repro.synthesis import SynthesisConfig, SynthesisEnv, ensure_behavior


def make_module(behavior: str) -> RTLModule:
    return RTLModule(
        name=f"mod_{behavior}",
        behavior=behavior,
        profile=Profile((0.0, 0.0), (20.0,)),
        cap_internal=2.0,
        netlist=DatapathNetlist("n"),
    )


class TestEnsureBehavior:
    def test_direct_support(self, library):
        module = make_module("fir")
        assert ensure_behavior(module, "fir", library)

    def test_no_equivalence_fails(self, library):
        module = make_module("fir")
        assert not ensure_behavior(module, "iir", library)

    def test_equivalence_aliases_impl(self, library):
        module = make_module("dot_chain")
        library.equivalences.declare_equivalent("dot_chain", "dot_tree")
        assert ensure_behavior(module, "dot_tree", library)
        assert module.supports("dot_tree")
        assert module.cap_internal("dot_tree") == module.cap_internal("dot_chain")


class TestEnv:
    def test_fresh_module_names_unique(self, flat_design, library):
        env = SynthesisEnv(flat_design, library, "power")
        names = {env.fresh_module_name("beh") for _ in range(5)}
        assert len(names) == 5

    def test_config_defaults(self, flat_design, library):
        env = SynthesisEnv(flat_design, library, "power")
        assert env.config.max_moves == SynthesisConfig().max_moves

    def test_context_objective(self, flat_design, library, flat_sim):
        env = SynthesisEnv(flat_design, library, "area")
        assert env.context(flat_sim).objective == "area"

    def test_context_shared_per_sim(self, flat_design, library, flat_sim):
        """One EvaluationContext per SimTrace, so the cost cache persists
        across the many context() calls within one operating point."""
        env = SynthesisEnv(flat_design, library, "power")
        assert env.context(flat_sim) is env.context(flat_sim)

    def test_caches_declared_and_bounded(self, flat_design, library):
        """Regression: the memo caches used to be bootstrapped lazily via
        getattr and could grow without bound."""
        config = SynthesisConfig(module_cache_size=3)
        env = SynthesisEnv(flat_design, library, "power", config)
        for cache in (env.module_cache, env._resynth_cache):
            for i in range(10):
                cache.put(("beh", float(i), 5.0), None)
            assert len(cache) == 3
        assert env._resynth_active is False
        assert env._module_counter == 0


class TestResetPointCaches:
    def test_reset_clears_per_point_state(self, flat_design, library, flat_sim):
        env = SynthesisEnv(flat_design, library, "power")
        env.module_cache.put(("beh", 10.0, 5.0), None)
        env._resynth_cache.put(("mod", "n", 2, 10.0, 5.0), None)
        env._resynth_active = True
        env.fresh_module_name("beh")
        env.context(flat_sim)

        env.reset_point_caches()

        assert len(env.module_cache) == 0
        assert len(env._resynth_cache) == 0
        assert env._resynth_active is False
        assert env._contexts == {}
        # Generated names restart, exactly as in a fresh worker env —
        # this is what makes serial and parallel sweeps bit-identical.
        assert env.fresh_module_name("beh") == "beh_v1"

    def test_reset_preserves_cumulative_telemetry(self, flat_design, library):
        env = SynthesisEnv(flat_design, library, "power")
        env.telemetry.evaluations = 7
        env.reset_point_caches()
        assert env.telemetry.evaluations == 7
