"""Unit tests for the synthesis environment and behavior aliasing."""

from repro.rtl import DatapathNetlist, Profile, RTLModule
from repro.synthesis import SynthesisConfig, SynthesisEnv, ensure_behavior


def make_module(behavior: str) -> RTLModule:
    return RTLModule(
        name=f"mod_{behavior}",
        behavior=behavior,
        profile=Profile((0.0, 0.0), (20.0,)),
        cap_internal=2.0,
        netlist=DatapathNetlist("n"),
    )


class TestEnsureBehavior:
    def test_direct_support(self, library):
        module = make_module("fir")
        assert ensure_behavior(module, "fir", library)

    def test_no_equivalence_fails(self, library):
        module = make_module("fir")
        assert not ensure_behavior(module, "iir", library)

    def test_equivalence_aliases_impl(self, library):
        module = make_module("dot_chain")
        library.equivalences.declare_equivalent("dot_chain", "dot_tree")
        assert ensure_behavior(module, "dot_tree", library)
        assert module.supports("dot_tree")
        assert module.cap_internal("dot_tree") == module.cap_internal("dot_chain")


class TestEnv:
    def test_fresh_module_names_unique(self, flat_design, library):
        env = SynthesisEnv(flat_design, library, "power")
        names = {env.fresh_module_name("beh") for _ in range(5)}
        assert len(names) == 5

    def test_config_defaults(self, flat_design, library):
        env = SynthesisEnv(flat_design, library, "power")
        assert env.config.max_moves == SynthesisConfig().max_moves

    def test_context_objective(self, flat_design, library, flat_sim):
        env = SynthesisEnv(flat_design, library, "area")
        assert env.context(flat_sim).objective == "area"
