"""Unit tests for the FSM-controller cost estimate."""

import pytest

from repro.power import ControllerUsage


class TestControllerUsage:
    def test_area_grows_with_signals_and_states(self):
        small = ControllerUsage(n_states=10, n_control_signals=8)
        wide = ControllerUsage(n_states=10, n_control_signals=30)
        long = ControllerUsage(n_states=60, n_control_signals=8)
        assert wide.area() > small.area()
        assert long.area() > small.area()

    def test_energy_scales_with_vdd_squared(self):
        usage = ControllerUsage(n_states=20, n_control_signals=15)
        assert usage.energy_per_sample(5.0) / usage.energy_per_sample(2.5) == (
            pytest.approx(4.0)
        )

    def test_energy_grows_with_states(self):
        short = ControllerUsage(n_states=10, n_control_signals=10)
        long = ControllerUsage(n_states=80, n_control_signals=10)
        assert long.energy_per_sample(5.0) > short.energy_per_sample(5.0)

    def test_report_includes_controller(self):
        from repro.power import InterconnectUsage, estimate_power

        wire = InterconnectUsage(n_connections=0)
        with_ctrl = estimate_power(
            [], [], [], wire, 5.0, 100.0,
            controller=ControllerUsage(20, 10),
        )
        without = estimate_power([], [], [], wire, 5.0, 100.0)
        assert with_ctrl.controller_energy > 0
        assert without.controller_energy == 0
        assert with_ctrl.total_energy > without.total_energy


class TestClockPressure:
    def test_short_clock_pays_in_controller(self, flat_design, library, flat_sim):
        """Halving the clock doubles the state count and the controller's
        share — the physical reason clock pruning penalizes tiny periods."""
        from repro.synthesis import EvaluationContext
        from repro.synthesis.context import SynthesisEnv
        from repro.synthesis.initial import initial_solution

        env = SynthesisEnv(flat_design, library, "power")
        ctx = EvaluationContext(flat_sim, (), "power")
        slow = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        fast = initial_solution(env, flat_design.top, flat_sim, 2.5, 5.0, 500.0)
        e_slow = ctx.evaluate(slow).report.controller_energy
        e_fast = ctx.evaluate(fast).report.controller_energy
        assert e_fast > e_slow
