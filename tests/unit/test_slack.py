"""Unit tests for slack analysis and environment constraints."""

import pytest

from repro.dfg import GraphBuilder
from repro.scheduling import (
    EnvironmentConstraint,
    TaskSpec,
    environment_of,
    latest_start_times,
    required_signal_times,
    schedule_tasks,
    task_slacks,
)

from tests.designs import chain_dfg


def chain_tasks():
    return [
        TaskSpec("tm", ("m",), "M", 3),
        TaskSpec("ta", ("a",), "A", 1),
    ]


class TestSlacks:
    def test_zero_slack_at_tight_deadline(self):
        dfg, tasks = chain_dfg(), chain_tasks()
        res = schedule_tasks(dfg, tasks)
        slacks = task_slacks(dfg, tasks, res, deadline=res.length)
        assert slacks["tm"] == 0
        assert slacks["ta"] == 0

    def test_slack_grows_with_deadline(self):
        dfg, tasks = chain_dfg(), chain_tasks()
        res = schedule_tasks(dfg, tasks)
        slacks = task_slacks(dfg, tasks, res, deadline=res.length + 5)
        assert slacks["tm"] == 5
        assert slacks["ta"] == 5

    def test_instance_order_constrains(self):
        """Two tasks on one instance: the earlier one's slack is bounded
        by the later one's latest start."""
        b = GraphBuilder("t")
        x, y = b.inputs("x", "y")
        m1 = b.mult(x, y, name="m1")
        m2 = b.mult(x, y, name="m2")
        b.output("o1", m1)
        b.output("o2", m2)
        dfg = b.build()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 3),
            TaskSpec("t2", ("m2",), "M", 3),
        ]
        res = schedule_tasks(dfg, tasks)
        latest = latest_start_times(dfg, tasks, res, deadline=10)
        first, second = res.instance_order["M"]
        assert latest[first] <= latest[second] - 3

    def test_required_signal_times_inputs(self):
        """Input slack becomes the characterized profile offset."""
        dfg, tasks = chain_dfg(), chain_tasks()
        res = schedule_tasks(dfg, tasks)
        required = required_signal_times(dfg, tasks, res, deadline=res.length)
        # y feeds both the multiplier (needed at 0) and the adder; the
        # multiplier dominates.
        assert required[("y", 0)] == 0
        assert required[("x", 0)] == 0


class TestEnvironment:
    def test_environment_of_module(self):
        b = GraphBuilder("t")
        x, y = b.inputs("x", "y")
        m = b.mult(x, y, name="m")
        h = b.hier("beh", m, y, name="h")
        b.output("o", h)
        dfg = b.build()
        tasks = [
            TaskSpec("tm", ("m",), "M", 3),
            TaskSpec("th", ("h",), "H", 4),
        ]
        res = schedule_tasks(dfg, tasks)
        env = environment_of(dfg, tasks[1], tasks, res, deadline=12)
        assert env.input_arrivals == (3, 0)
        assert env.output_deadlines == (12,)

    def test_admits(self):
        env = EnvironmentConstraint((0, 3), (10,))
        # Start = max(0-0, 3-3) = 0; output at 8 <= 10.
        assert env.admits((0, 3), (8,))
        # Start = max(0, 3) = 3; output at 3 + 8 = 11 > 10.
        assert not env.admits((0, 0), (8,))
        # Port-count mismatches never admit.
        assert not env.admits((0,), (8,))
        assert not env.admits((0, 3), (8, 8))
