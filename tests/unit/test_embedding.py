"""Unit tests for RTL embedding (the paper's move-C technique)."""

import pytest

from repro.rtl import ComponentKind, DatapathNetlist, embed_netlists, naive_union


def build_netlist(name: str, fus: list[tuple[str, str]], n_regs: int,
                  wires: list[tuple[str, int, str, int]]) -> DatapathNetlist:
    n = DatapathNetlist(name)
    n.add_component("in0", ComponentKind.PORT, "in")
    n.add_component("in1", ComponentKind.PORT, "in")
    n.add_component("out0", ComponentKind.PORT, "out")
    for comp_id, cell in fus:
        n.add_component(comp_id, ComponentKind.FUNCTIONAL, cell)
    for i in range(n_regs):
        n.add_component(f"r{i}", ComponentKind.REGISTER, "reg1")
    for src, sp, dst, dp in wires:
        n.connect(src, sp, dst, dp)
    return n


def pair():
    a = build_netlist(
        "a",
        [("A1", "add1"), ("M1", "mult1")],
        3,
        [
            ("in0", 0, "r0", 0), ("in1", 0, "r1", 0),
            ("r0", 0, "A1", 0), ("r1", 0, "A1", 1),
            ("A1", 0, "r2", 0),
            ("r2", 0, "M1", 0), ("r0", 0, "M1", 1),
            ("M1", 0, "out0", 0),
        ],
    )
    b = build_netlist(
        "b",
        [("X1", "add1"), ("Y1", "mult1"), ("S1", "sub1")],
        4,
        [
            ("in0", 0, "r0", 0), ("in1", 0, "r1", 0),
            ("r0", 0, "X1", 0), ("r1", 0, "X1", 1),
            ("X1", 0, "r2", 0),
            ("r2", 0, "S1", 0), ("r1", 0, "S1", 1),
            ("S1", 0, "r3", 0),
            ("r3", 0, "Y1", 0), ("r2", 0, "Y1", 1),
            ("Y1", 0, "out0", 0),
        ],
    )
    return a, b


class TestEmbedding:
    def test_merged_smaller_than_union(self, library):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        union = naive_union(a, b, "u")
        assert merged.netlist.area(library) < union.netlist.area(library)

    def test_merged_not_smaller_than_either(self, library):
        """The merged module must contain both behaviors' hardware."""
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        assert merged.netlist.area(library) >= max(a.area(library), b.area(library)) - 1e-9

    def test_every_b_component_mapped(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        for comp in b.components():
            assert comp.comp_id in merged.map_b
            assert merged.netlist.has_component(merged.map_b[comp.comp_id])

    def test_classes_respected(self):
        """add1 never overlays mult1 or a register."""
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        for b_comp in b.components():
            target = merged.netlist.component(merged.map_b[b_comp.comp_id])
            if b_comp.kind == ComponentKind.FUNCTIONAL:
                assert target.cell == b_comp.cell
            if b_comp.kind == ComponentKind.REGISTER:
                assert target.kind == ComponentKind.REGISTER

    def test_ports_overlay_by_id(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        assert merged.map_b["in0"] == "in0"
        assert merged.map_b["out0"] == "out0"

    def test_shared_component_count(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        # add1, mult1, 3 registers and 3 ports can be shared; sub1 and the
        # 4th register cannot.
        assert merged.shared_components >= 4

    def test_extra_components_added_fresh(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        cells = [c.cell for c in merged.netlist.components(ComponentKind.FUNCTIONAL)]
        assert sorted(cells) == ["add1", "mult1", "sub1"]

    def test_shared_connections_counted(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        assert merged.shared_connections > 0

    def test_map_a_identity(self):
        a, b = pair()
        merged = embed_netlists(a, b, "m")
        assert all(k == v for k, v in merged.map_a.items())


class TestNaiveUnion:
    def test_no_functional_sharing(self):
        a, b = pair()
        union = naive_union(a, b, "u")
        assert union.shared_components == 0
        fus = union.netlist.components(ComponentKind.FUNCTIONAL)
        assert len(fus) == 5  # 2 from a + 3 from b

    def test_ports_still_shared(self):
        a, b = pair()
        union = naive_union(a, b, "u")
        ports = union.netlist.components(ComponentKind.PORT)
        assert len(ports) == 3
