"""Unit tests for switching-activity extraction."""

import numpy as np
import pytest

from repro.power import (
    hamming_distance,
    interleaved_activity,
    operand_activity,
    stream_activity,
)


class TestHamming:
    def test_matches_python_popcount(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-(1 << 15), 1 << 15, size=50)
        b = rng.integers(-(1 << 15), 1 << 15, size=50)
        got = hamming_distance(a, b, 16)
        expected = [
            bin(((int(x) ^ int(y)) & 0xFFFF)).count("1") for x, y in zip(a, b)
        ]
        np.testing.assert_array_equal(got, expected)

    def test_identical_streams_zero(self):
        a = np.array([1, 2, 3])
        np.testing.assert_array_equal(hamming_distance(a, a, 16), [0, 0, 0])


class TestStreamActivity:
    def test_constant_stream_is_zero(self):
        assert stream_activity(np.full(20, 42), 16) == 0.0

    def test_full_toggle_pattern(self):
        # 0x0000 <-> 0xFFFF toggles all 16 bits every sample.
        stream = np.array([0, -1] * 10)
        assert stream_activity(stream, 16) == pytest.approx(1.0)

    def test_short_stream_zero(self):
        assert stream_activity(np.array([5]), 16) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        s = rng.integers(-(1 << 15), 1 << 15, size=100)
        assert 0.0 <= stream_activity(s, 16) <= 1.0


class TestInterleavedActivity:
    def test_single_stream_equals_dedicated(self):
        rng = np.random.default_rng(2)
        s = rng.integers(-(1 << 15), 1 << 15, size=64)
        assert interleaved_activity([s], 16) == stream_activity(s, 16)

    def test_identical_streams_free_sharing(self):
        """Interleaving a stream with itself adds no toggles: the total
        toggle count per sample is unchanged, so the per-activation
        activity halves (two activations share one operand change)."""
        rng = np.random.default_rng(3)
        s = rng.integers(-(1 << 15), 1 << 15, size=64)
        assert interleaved_activity([s, s], 16) == pytest.approx(
            stream_activity(s, 16) / 2, abs=0.02
        )

    def test_uncorrelated_sharing_raises_activity(self):
        """The paper's key power effect (Section 3, ref [9])."""
        n = 256
        t = np.arange(n)
        slow1 = (t // 8) * 3          # slowly varying
        slow2 = -(t // 8) * 5 + 1000  # slowly varying, unrelated values
        dedicated = max(
            stream_activity(slow1, 16), stream_activity(slow2, 16)
        )
        shared = interleaved_activity([slow1, slow2], 16)
        assert shared > dedicated + 0.1

    def test_empty(self):
        assert interleaved_activity([], 16) == 0.0


class TestOperandActivity:
    def test_averages_over_ports(self):
        const = np.full(32, 5)
        toggling = np.array([0, -1] * 16)
        act = operand_activity([[const, toggling]], 16)
        assert act == pytest.approx(0.5, abs=0.05)

    def test_no_ops(self):
        assert operand_activity([], 16) == 0.0

    def test_ragged_port_counts(self):
        a = np.full(16, 1)
        b = np.full(16, 2)
        act = operand_activity([[a, b], [a]], 16)
        assert 0.0 <= act <= 1.0
