"""Unit tests for switching-activity extraction."""

import numpy as np
import pytest

from repro.power import (
    activity_cache_sizes,
    batch_activities,
    hamming_distance,
    interleaved_activity,
    operand_activity,
    reset_activity_caches,
    stream_activity,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    reset_activity_caches()
    yield
    reset_activity_caches()


class TestHamming:
    def test_matches_python_popcount(self):
        rng = np.random.default_rng(0)
        a = rng.integers(-(1 << 15), 1 << 15, size=50)
        b = rng.integers(-(1 << 15), 1 << 15, size=50)
        got = hamming_distance(a, b, 16)
        expected = [
            bin(((int(x) ^ int(y)) & 0xFFFF)).count("1") for x, y in zip(a, b)
        ]
        np.testing.assert_array_equal(got, expected)

    def test_identical_streams_zero(self):
        a = np.array([1, 2, 3])
        np.testing.assert_array_equal(hamming_distance(a, a, 16), [0, 0, 0])


class TestStreamActivity:
    def test_constant_stream_is_zero(self):
        assert stream_activity(np.full(20, 42), 16) == 0.0

    def test_full_toggle_pattern(self):
        # 0x0000 <-> 0xFFFF toggles all 16 bits every sample.
        stream = np.array([0, -1] * 10)
        assert stream_activity(stream, 16) == pytest.approx(1.0)

    def test_short_stream_zero(self):
        assert stream_activity(np.array([5]), 16) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(1)
        s = rng.integers(-(1 << 15), 1 << 15, size=100)
        assert 0.0 <= stream_activity(s, 16) <= 1.0


class TestInterleavedActivity:
    def test_single_stream_equals_dedicated(self):
        rng = np.random.default_rng(2)
        s = rng.integers(-(1 << 15), 1 << 15, size=64)
        assert interleaved_activity([s], 16) == stream_activity(s, 16)

    def test_identical_streams_free_sharing(self):
        """Interleaving a stream with itself adds no toggles: the total
        toggle count per sample is unchanged, so the per-activation
        activity halves (two activations share one operand change)."""
        rng = np.random.default_rng(3)
        s = rng.integers(-(1 << 15), 1 << 15, size=64)
        assert interleaved_activity([s, s], 16) == pytest.approx(
            stream_activity(s, 16) / 2, abs=0.02
        )

    def test_uncorrelated_sharing_raises_activity(self):
        """The paper's key power effect (Section 3, ref [9])."""
        n = 256
        t = np.arange(n)
        slow1 = (t // 8) * 3          # slowly varying
        slow2 = -(t // 8) * 5 + 1000  # slowly varying, unrelated values
        dedicated = max(
            stream_activity(slow1, 16), stream_activity(slow2, 16)
        )
        shared = interleaved_activity([slow1, slow2], 16)
        assert shared > dedicated + 0.1

    def test_empty(self):
        assert interleaved_activity([], 16) == 0.0


class TestOperandActivity:
    def test_averages_over_ports(self):
        const = np.full(32, 5)
        toggling = np.array([0, -1] * 16)
        act = operand_activity([[const, toggling]], 16)
        assert act == pytest.approx(0.5, abs=0.05)

    def test_no_ops(self):
        assert operand_activity([], 16) == 0.0

    def test_ragged_port_counts(self):
        a = np.full(16, 1)
        b = np.full(16, 2)
        act = operand_activity([[a, b], [a]], 16)
        assert 0.0 <= act <= 1.0


class TestBatchActivities:
    """The batched kernel is bit-identical to the scalar functions."""

    def _streams(self, seed, k, n=64):
        rng = np.random.default_rng(seed)
        return [
            rng.integers(-(1 << 15), 1 << 15, size=n) for _ in range(k)
        ]

    def test_matches_scalars_bitwise(self):
        single = self._streams(10, 1)
        pair = self._streams(11, 2)
        triple = self._streams(12, 3, n=40)
        narrow = self._streams(13, 2)
        requests = [
            (tuple(single), 16),
            (tuple(pair), 16),
            (tuple(triple), 16),
            (tuple(narrow), 8),
            (tuple(single), 8),  # same stream, different width
        ]
        got = batch_activities(requests)
        reset_activity_caches()  # force the scalar path to recompute
        expected = [
            interleaved_activity(list(streams), width)
            for streams, width in requests
        ]
        assert got == expected  # exact float equality, not approx

    def test_empty_and_short_requests(self):
        assert batch_activities([((), 16)]) == [0.0]
        assert batch_activities([((np.array([7]),), 16)]) == [0.0]
        assert batch_activities([]) == []

    def test_duplicate_requests_deduped(self):
        pair = tuple(self._streams(14, 2))
        got = batch_activities([(pair, 16), (pair, 16), (pair, 16)])
        assert got[0] == got[1] == got[2]
        assert got[0] == interleaved_activity(list(pair), 16)

    def test_mixed_hits_and_misses(self):
        a, b = self._streams(15, 2)
        warm = stream_activity(a, 16)  # pre-populate the stream cache
        got = batch_activities([((a,), 16), ((b,), 16), ((a, b), 16)])
        assert got[0] == warm
        reset_activity_caches()
        assert got[1] == stream_activity(b, 16)
        assert got[2] == interleaved_activity([a, b], 16)


class TestActivityCaches:
    def test_scalar_and_batch_share_memos(self):
        rng = np.random.default_rng(20)
        s = rng.integers(-(1 << 15), 1 << 15, size=64)
        first = batch_activities([((s,), 16)])[0]
        # The scalar wrapper must answer from the same memo entry.
        assert stream_activity(s, 16) == first
        assert activity_cache_sizes() == (1, 0)

    def test_interleaved_does_not_pollute_stream_cache(self):
        """The interleaved temporary array must never be pinned in the
        per-stream cache — only the interleaved memo may grow."""
        rng = np.random.default_rng(21)
        streams = [
            rng.integers(-(1 << 15), 1 << 15, size=64) for _ in range(2)
        ]
        before = activity_cache_sizes()
        for _ in range(5):
            interleaved_activity(streams, 16)
        stream_entries, interleaved_entries = activity_cache_sizes()
        assert stream_entries == before[0]  # untouched
        assert interleaved_entries == 1  # one memo entry, not 5

    def test_reset_empties_both_caches(self):
        rng = np.random.default_rng(22)
        s1 = rng.integers(-(1 << 15), 1 << 15, size=32)
        s2 = rng.integers(-(1 << 15), 1 << 15, size=32)
        stream_activity(s1, 16)
        interleaved_activity([s1, s2], 16)
        assert activity_cache_sizes() != (0, 0)
        reset_activity_caches()
        assert activity_cache_sizes() == (0, 0)

    def test_results_identical_after_reset(self):
        rng = np.random.default_rng(23)
        streams = [
            rng.integers(-(1 << 15), 1 << 15, size=48) for _ in range(3)
        ]
        warm = interleaved_activity(streams, 16)
        reset_activity_caches()
        assert interleaved_activity(streams, 16) == warm
