"""Regression tests for the move-B resynthesis memo's content keying.

The legacy cache key started with ``module.name`` — a counter-generated
string — so two structurally identical modules minted under different
names (which happens whenever generated-name sequences diverge, e.g.
across operating points or warm starts) missed each other's entries and
resynthesized twice.  The key now leads with the module's canonical
content signature, making the name irrelevant.
"""

import pickle

import pytest

from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.improve import resynthesize_module
from repro.synthesis.initial import initial_solution

from tests.designs import make_butterfly_design, sim_for


@pytest.fixture
def resynth_setup(library):
    design = make_butterfly_design()
    env = SynthesisEnv(design, library, "power", SynthesisConfig(max_moves=4))
    sim = sim_for(design)
    sol = initial_solution(env, design.top, sim, 10.0, 5.0, 2000.0)
    inst = next(
        i for i in sol.instances.values()
        if i.module is not None and i.module.behavior == "butterfly"
    )
    node_id = sol.executions[inst.inst_id][0][0]
    return env, sol, sim, node_id, inst.module


def _renamed_copy(module, name):
    clone = pickle.loads(pickle.dumps(module))
    clone.name = name
    clone.netlist.name = name
    return clone


class TestContentKeyedResynthMemo:
    def test_identical_modules_with_different_names_share_entry(
        self, resynth_setup
    ):
        env, sol, sim, node_id, module = resynth_setup
        budget = module.internal.solution.schedule().length + 3

        first = resynthesize_module(
            env, sol, sim, node_id, "butterfly", module, budget
        )
        hits_before = env.telemetry.store_hits.get("point.resynth", 0)

        other = _renamed_copy(module, "totally_different_name")
        second = resynthesize_module(
            env, sol, sim, node_id, "butterfly", other, budget
        )
        # Same content, same budget, same site: the second call must be
        # answered by the memo (the legacy name-keyed cache missed here).
        assert env.telemetry.store_hits.get("point.resynth", 0) == hits_before + 1
        assert second is first
        assert len(env._resynth_cache) == 1

    def test_different_budgets_do_not_collide(self, resynth_setup):
        env, sol, sim, node_id, module = resynth_setup
        budget = module.internal.solution.schedule().length + 3
        resynthesize_module(env, sol, sim, node_id, "butterfly", module, budget)
        misses_before = env.telemetry.store_misses.get("point.resynth", 0)
        resynthesize_module(
            env, sol, sim, node_id, "butterfly", module, budget + 1
        )
        assert (
            env.telemetry.store_misses.get("point.resynth", 0)
            == misses_before + 1
        )
