"""Unit tests for the shared trace reader and schema compatibility.

The checked-in samples under ``tests/data/traces/`` are one real
synthesis trace in three wire formats: ``sample_v3.jsonl`` as recorded,
``sample_v2.jsonl`` with the v3-only ``discovered`` step field stripped,
and ``sample_v1.jsonl`` additionally without the v2-only run_end
``store`` field — the exact deltas each schema bump introduced.  Every
consumer (reader, report, replay) must accept all three.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.trace import (
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    TraceSchemaError,
    iter_events,
    read_events,
)
from repro.trace.reader import check_schema, trace_schema
from repro.trace.report import render_report, run_overview

DATA = Path(__file__).parent.parent / "data" / "traces"
SAMPLES = {
    1: DATA / "sample_v1.jsonl",
    2: DATA / "sample_v2.jsonl",
    3: DATA / "sample_v3.jsonl",
}


class TestCheckSchema:
    def test_accepts_every_supported_version(self):
        for version in range(MIN_SCHEMA_VERSION, SCHEMA_VERSION + 1):
            assert check_schema(version) == version

    @pytest.mark.parametrize("bad", [0, SCHEMA_VERSION + 1, -1])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(TraceSchemaError, match="schema"):
            check_schema(bad)

    @pytest.mark.parametrize("bad", [None, "3", 3.0, True])
    def test_rejects_non_integer(self, bad):
        with pytest.raises(TraceSchemaError, match="schema"):
            check_schema(bad)

    def test_is_a_value_error_for_legacy_callers(self):
        # report historically raised ValueError on a bad schema; the
        # shared error keeps that contract.
        with pytest.raises(ValueError):
            check_schema(SCHEMA_VERSION + 1)


class TestIterEvents:
    def test_reads_file_path(self):
        events = read_events(SAMPLES[3])
        assert events[0]["k"] == "run_start"
        assert events[-1]["k"] == "run_end"

    def test_reads_open_stream_and_line_iterable(self):
        text = SAMPLES[3].read_text()
        from_stream = read_events(io.StringIO(text))
        from_lines = read_events(text.splitlines())
        assert from_stream == from_lines == read_events(SAMPLES[3])

    def test_passes_through_parsed_events(self):
        events = read_events(SAMPLES[3])
        assert read_events(events) == events

    def test_skips_blank_lines(self):
        text = SAMPLES[3].read_text().replace("\n", "\n\n")
        assert read_events(io.StringIO(text)) == read_events(SAMPLES[3])

    def test_empty_source_yields_nothing(self):
        assert read_events([]) == []
        assert read_events(io.StringIO("")) == []

    def test_malformed_line_reports_line_number(self):
        lines = SAMPLES[3].read_text().splitlines()
        lines.insert(2, "{not json")
        with pytest.raises(ValueError, match="line 3"):
            read_events(lines)

    def test_non_event_object_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            read_events(['{"no_kind": 1}'])

    def test_unsupported_schema_raises_at_header(self):
        lines = SAMPLES[3].read_text().splitlines()
        lines[0] = lines[0].replace(
            f'"schema":{SCHEMA_VERSION}', f'"schema":{SCHEMA_VERSION + 1}'
        )
        it = iter_events(lines)
        with pytest.raises(TraceSchemaError):
            next(it)

    def test_is_lazy(self):
        lines = iter(SAMPLES[3].read_text().splitlines())
        it = iter_events(lines)
        first = next(it)
        assert first["k"] == "run_start"
        # The source iterator has only been consumed as far as needed.
        assert next(lines) is not None


class TestSchemaCompatibility:
    @pytest.mark.parametrize("version", sorted(SAMPLES))
    def test_reader_accepts_all_versions(self, version):
        events = read_events(SAMPLES[version])
        assert trace_schema(events) == version
        assert events[0]["schema"] == version

    @pytest.mark.parametrize("version", sorted(SAMPLES))
    def test_report_renders_all_versions(self, version):
        events = read_events(SAMPLES[version])
        text = render_report(events)
        assert "winner" in text
        overview = run_overview(events)
        assert overview["design"] == "paulin"
        assert overview["n_steps"] > 0

    def test_versions_are_the_same_run(self):
        # The samples differ only by the optional fields each schema
        # bump added; the search trajectory they record is identical.
        def skeleton(events):
            out = []
            for e in events:
                e = {k: v for k, v in e.items()
                     if k not in ("schema", "discovered", "store")}
                out.append(e)
            return out

        v1, v2, v3 = (read_events(SAMPLES[v]) for v in (1, 2, 3))
        assert skeleton(v1) == skeleton(v2) == skeleton(v3)
        assert any("discovered" in e for e in v3 if e["k"] == "step")
        assert not any("discovered" in e for e in v2 if e["k"] == "step")

    def test_trace_schema_requires_header(self):
        with pytest.raises(ValueError, match="run_start"):
            trace_schema([{"k": "step"}])
