"""Unit tests for complex-library population (slow-ish: real synthesis)."""

import pytest

from repro.library import default_library
from repro.synthesis import SynthesisConfig
from repro.synthesis.library_gen import build_complex_library

FAST = SynthesisConfig(max_moves=4, max_passes=1, n_clocks=1)


class TestBuildComplexLibrary:
    def test_modules_registered_per_behavior(self, butterfly_design):
        library = build_complex_library(
            butterfly_design,
            default_library(),
            objectives=("area",),
            laxity_factors=(1.5,),
            config=FAST,
            n_samples=24,
        )
        modules = library.complex_modules_for("butterfly")
        assert len(modules) == 1
        assert modules[0].supports("butterfly")

    def test_corners_multiply(self, butterfly_design):
        library = build_complex_library(
            butterfly_design,
            default_library(),
            objectives=("area", "power"),
            laxity_factors=(1.5, 2.5),
            config=FAST,
            n_samples=24,
        )
        assert len(library.complex_modules_for("butterfly")) == 4

    def test_variants_each_synthesized(self):
        from repro.bench_suite import get_benchmark

        design = get_benchmark("test1")
        library = build_complex_library(
            design,
            default_library(),
            objectives=("area",),
            laxity_factors=(1.5,),
            config=FAST,
            n_samples=24,
        )
        # dot3 has two variants -> two modules under one behavior.
        assert len(library.complex_modules_for("dot3")) == 2

    def test_profiles_usable(self, butterfly_design):
        library = build_complex_library(
            butterfly_design,
            default_library(),
            objectives=("power",),
            laxity_factors=(2.0,),
            config=FAST,
            n_samples=24,
        )
        module = library.complex_modules_for("butterfly")[0]
        profile = module.profile("butterfly")
        assert len(profile.input_offsets_ns) == 2
        assert len(profile.output_latencies_ns) == 2
        assert module.cap_internal("butterfly") > 0
