"""Unit tests for the bounded trace recorder and JSONL round-trip."""

from __future__ import annotations

import json

from repro.trace import (
    SCHEMA_VERSION,
    TraceRecorder,
    dumps_trace,
    load_trace,
    span_kinds,
    write_trace,
)


def test_emit_drops_none_fields_and_keeps_order():
    rec = TraceRecorder(timings=False)
    rec.emit("step", point=0, gain=1.5, dur_ns=None, move="A-swap")
    assert rec.events == [{"k": "step", "point": 0, "gain": 1.5, "move": "A-swap"}]
    # Insertion order is the keyword order at the call site.
    assert list(rec.events[0]) == ["k", "point", "gain", "move"]


def test_timings_off_clock_returns_none():
    rec = TraceRecorder(timings=False)
    assert rec.clock() is None
    assert rec.elapsed_ns(None) is None


def test_timings_on_clock_is_monotonic_ns():
    rec = TraceRecorder(timings=True)
    t0 = rec.clock()
    assert isinstance(t0, int)
    assert rec.elapsed_ns(t0) >= 0


def test_bounded_buffer_counts_drops():
    rec = TraceRecorder(timings=False, max_events=2)
    for i in range(5):
        rec.emit("step", i=i)
    assert len(rec.events) == 2
    assert rec.dropped == 3


def test_absorb_merges_in_order_and_respects_bound():
    parent = TraceRecorder(timings=False, max_events=3)
    parent.emit("run_start", schema=SCHEMA_VERSION)
    worker_events = [{"k": "step", "i": 0}, {"k": "step", "i": 1},
                     {"k": "step", "i": 2}]
    parent.absorb(worker_events, dropped=4)
    assert [e.get("i") for e in parent.events] == [None, 0, 1]
    assert parent.dropped == 1 + 4


def test_jsonl_round_trip(tmp_path):
    events = [
        {"k": "run_start", "schema": SCHEMA_VERSION, "design": "t"},
        {"k": "step", "gain": -0.25},
    ]
    path = tmp_path / "trace.jsonl"
    assert write_trace(events, path) == 2
    text = path.read_text()
    # One compact JSON object per line, trailing newline, no spaces.
    assert text.endswith("\n")
    assert " " not in text.splitlines()[0]
    assert load_trace(path) == events
    assert dumps_trace([]) == ""


def test_dumps_trace_is_byte_stable():
    events = [{"k": "step", "b": 1, "a": 2}]
    assert dumps_trace(events) == dumps_trace(json.loads(dumps_trace(events))
                                              and events)
    # Key order is preserved verbatim (insertion order, not sorted).
    assert dumps_trace(events) == '{"k":"step","b":1,"a":2}\n'


def test_span_kinds_documents_every_kind():
    kinds = span_kinds()
    for expected in ("run_start", "point_start", "pass_start", "step",
                     "pass_end", "verify", "eval", "point_end", "run_end"):
        assert expected in kinds
        assert kinds[expected], f"kind {expected} has no documented fields"
    # The registry is a copy: mutating it must not leak.
    kinds["step"] = ()
    assert span_kinds()["step"]
