"""Unit tests for canonical content keys (repro.dfg.canonical).

The tiered synthesis store addresses entries by these fingerprints, so
they must be invariant under everything that does not change synthesis
results (node names, construction order) and sensitive to everything
that does (operations, wiring, port order, nested behavior bodies).
"""

import numpy as np

from repro.dfg import (
    Design,
    GraphBuilder,
    canonical_fingerprint,
    clusters_isomorphic,
    config_signature,
    design_fingerprint,
    graph_signature,
    library_signature,
    stream_digest,
)
from repro.library import default_library
from repro.synthesis import SynthesisConfig

from tests.designs import make_butterfly_design


def _mac(names=("m", "a"), order="ma"):
    """x*y + z with configurable node names and construction order."""
    b = GraphBuilder("mac")
    x, y, z = b.inputs("x", "y", "z")
    m = b.mult(x, y, name=names[0])
    b.output("o", b.add(m, z, name=names[1]))
    return b.build()


class TestCanonicalFingerprint:
    def test_name_invariance(self):
        assert canonical_fingerprint(_mac(("m", "a"))) == canonical_fingerprint(
            _mac(("prod", "sum"))
        )

    def test_construction_order_invariance(self):
        b1 = GraphBuilder("t")
        x, y, z = b1.inputs("x", "y", "z")
        m1 = b1.mult(x, y, name="first")
        m2 = b1.mult(y, z, name="second")
        b1.output("o", b1.add(m1, m2, name="a"))

        b2 = GraphBuilder("t")
        x, y, z = b2.inputs("x", "y", "z")
        m2 = b2.mult(y, z, name="zz_late")  # built first this time
        m1 = b2.mult(x, y, name="aa_early")
        b2.output("o", b2.add(m1, m2, name="a"))
        assert canonical_fingerprint(b1.build()) == canonical_fingerprint(
            b2.build()
        )

    def test_distinct_operations_differ(self):
        b = GraphBuilder("t")
        x, y, z = b.inputs("x", "y", "z")
        m = b.mult(x, y, name="m")
        b.output("o", b.sub(m, z, name="s"))  # sub instead of add
        assert canonical_fingerprint(_mac()) != canonical_fingerprint(b.build())

    def test_port_order_matters_like_isomorphism(self):
        """Fingerprint equality must track clusters_isomorphic exactly."""

        def body(swap):
            b = GraphBuilder("c")
            x, y = b.inputs("in0", "in1")
            if swap:
                b.output("out0", b.sub(y, x))
            else:
                b.output("out0", b.sub(x, y))
            return b.build()

        same = clusters_isomorphic(body(False), body(False))
        diff = clusters_isomorphic(body(False), body(True))
        assert same and not diff
        assert canonical_fingerprint(body(False)) == canonical_fingerprint(
            body(False)
        )
        assert canonical_fingerprint(body(False)) != canonical_fingerprint(
            body(True)
        )

    def test_memoized_per_graph(self):
        dfg = _mac()
        assert canonical_fingerprint(dfg) == canonical_fingerprint(dfg)


class TestDesignFingerprint:
    def test_recurses_into_behaviors(self):
        """Changing a nested body changes the parent's fingerprint."""
        base = make_butterfly_design()
        changed = make_butterfly_design()
        # Same top graph, but the butterfly body's subtract becomes an add.
        b = GraphBuilder("butterfly")
        a, c = b.inputs("a", "b")
        b.output("o0", b.add(a, c, name="badd"))
        b.output("o1", b.add(a, c, name="bsub"))
        changed2 = Design("bf_design")
        changed2.add_dfg(b.build())
        changed2.add_dfg(changed.top, top=True)
        assert design_fingerprint(base, base.top) == design_fingerprint(
            make_butterfly_design(), make_butterfly_design().top
        )
        assert design_fingerprint(base, base.top) != design_fingerprint(
            changed2, changed2.top
        )


class TestGraphSignature:
    def test_identity_exact(self):
        """Node renames change the signature (schedules key by node id)."""
        assert graph_signature(_mac(("m", "a"))) != graph_signature(
            _mac(("prod", "sum"))
        )
        assert graph_signature(_mac()) == graph_signature(_mac())


class TestStreamDigest:
    def test_value_and_dtype_sensitivity(self):
        a = [np.arange(8, dtype=np.int64)]
        b = [np.arange(8, dtype=np.int64)]
        c = [np.arange(8, dtype=np.int32)]
        d = [np.arange(1, 9, dtype=np.int64)]
        assert stream_digest(a) == stream_digest(b)
        assert stream_digest(a) != stream_digest(c)
        assert stream_digest(a) != stream_digest(d)


class TestContextSignatures:
    def test_library_signature_is_stable(self):
        assert library_signature(default_library()) == library_signature(
            default_library()
        )

    def test_config_signature_ignores_execution_knobs(self):
        base = SynthesisConfig()
        execy = SynthesisConfig(n_workers=8, score_workers=4, trace=True,
                                cache_dir="/tmp/x", run_cache_size=7)
        functional = SynthesisConfig(max_passes=1)
        assert config_signature(base) == config_signature(execy)
        assert config_signature(base) != config_signature(functional)
