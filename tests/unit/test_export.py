"""Unit tests for the JSON sweep export."""

import json

import pytest

from repro.reporting import (
    SweepResults,
    result_to_dict,
    run_cell,
    save_sweep_json,
    sweep_to_dict,
)
from repro.synthesis import SynthesisConfig


FAST = SynthesisConfig(max_moves=3, max_passes=1, n_clocks=1)


@pytest.fixture(scope="module")
def sweep():
    results = SweepResults()
    cell = run_cell("paulin", 2.0, config=FAST, n_samples=24)
    results.cells[("paulin", 2.0)] = cell
    return results


class TestExport:
    def test_result_dict_fields(self, sweep):
        cell = sweep.cell("paulin", 2.0)
        data = result_to_dict(cell.flat_area)
        assert data["objective"] == "area"
        assert data["flattened"] is True
        assert data["area"] > 0
        assert data["schedule_cycles"] > 0

    def test_result_dict_includes_telemetry(self, sweep):
        cell = sweep.cell("paulin", 2.0)
        data = result_to_dict(cell.hier_power)
        telemetry = data["telemetry"]
        assert telemetry["evaluations"] > 0
        assert telemetry["evaluations"] == (
            telemetry["cache_hits"] + telemetry["cache_misses"]
        )
        assert 0.0 <= telemetry["cache_hit_rate"] <= 1.0

    def test_sweep_dict_structure(self, sweep):
        data = sweep_to_dict(sweep)
        assert data["circuits"] == ["paulin"]
        assert data["laxity_factors"] == [2.0]
        cell = data["cells"]["paulin@2"]
        assert cell["normalized"]["area"]["flat_area_scaled"] == pytest.approx(1.0)
        assert set(cell["runs"]) == {
            "flat_area",
            "flat_area_scaled",
            "flat_power",
            "hier_area",
            "hier_area_scaled",
            "hier_power",
        }

    def test_json_roundtrip(self, sweep, tmp_path):
        path = save_sweep_json(sweep, tmp_path / "sweep.json")
        loaded = json.loads(path.read_text())
        assert loaded == sweep_to_dict(sweep)

    def test_normalization_consistency(self, sweep):
        """Exported normalized powers = absolute powers / base power."""
        data = sweep_to_dict(sweep)["cells"]["paulin@2"]
        base = data["runs"]["flat_area"]["power"]
        assert data["normalized"]["power"]["flat_power"] == pytest.approx(
            data["runs"]["flat_power"]["power"] / base
        )
