"""Unit tests for the synthesis solution representation."""

import pytest

from repro.dfg import Operation
from repro.errors import SynthesisError
from repro.synthesis import Solution
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution


@pytest.fixture
def env(flat_design, library):
    return SynthesisEnv(flat_design, library, "power")


@pytest.fixture
def solution(env, flat_design, flat_sim):
    return initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)


class TestConstruction:
    def test_instance_needs_cell_or_module(self, flat_dfg, library):
        sol = Solution(flat_dfg, library, 10.0, 5.0, 500.0)
        with pytest.raises(SynthesisError, match="exactly one"):
            sol.add_instance()

    def test_duplicate_register(self, solution):
        reg = next(iter(solution.reg_signals))
        with pytest.raises(SynthesisError, match="duplicate register"):
            solution.add_register([("x", 0)], reg_id=reg)

    def test_fresh_ids_unique(self, solution):
        ids = {solution.fresh_id("q") for _ in range(10)}
        assert len(ids) == 10


class TestBindingQueries:
    def test_instance_of(self, solution):
        inst = solution.instance_of("m1")
        assert solution.instances[inst].cell.supports(Operation.MULT)

    def test_instance_of_unbound(self, solution):
        with pytest.raises(SynthesisError, match="not bound"):
            solution.instance_of("ghost")

    def test_register_of(self, solution):
        reg = solution.register_of(("m1", 0))
        assert ("m1", 0) in solution.reg_signals[reg]

    def test_registered_signals_exclude_consts(self, flat_design, library, env, flat_sim):
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        for signal in sol.registered_signals():
            node = flat_design.top.node(signal[0])
            assert node.kind.value != "const"


class TestMutations:
    def test_set_cell_invalidates_schedule(self, solution, library):
        len_before = solution.schedule().length
        m_inst = solution.instance_of("m1")
        solution.set_cell(m_inst, library.cell("mult2"))
        assert solution.schedule().length > len_before

    def test_merge_instances(self, solution):
        a = solution.instance_of("a1")
        s = solution.instance_of("s1")
        # Both are ALU-compatible only if the cell supports both ops; use
        # the add instance with an alu cell first.
        solution.set_cell(a, solution.library.cell("alu1"))
        solution.merge_instances(a, s)
        assert solution.instance_of("s1") == a
        assert s not in solution.instances
        solution.check_invariants()

    def test_merge_with_self_rejected(self, solution):
        a = solution.instance_of("a1")
        with pytest.raises(SynthesisError, match="itself"):
            solution.merge_instances(a, a)

    def test_remove_busy_instance_rejected(self, solution):
        a = solution.instance_of("a1")
        with pytest.raises(SynthesisError, match="still has executions"):
            solution.remove_instance(a)

    def test_split_instance(self, solution):
        a = solution.instance_of("a1")
        s = solution.instance_of("s1")
        solution.set_cell(a, solution.library.cell("alu1"))
        solution.merge_instances(a, s)
        twin = solution.split_instance(a, [("s1",)])
        assert solution.instance_of("s1") == twin
        solution.check_invariants()

    def test_split_requires_both_sides(self, solution):
        a = solution.instance_of("a1")
        with pytest.raises(SynthesisError, match="both"):
            solution.split_instance(a, [("a1",)])

    def test_register_merge_split(self, solution):
        regs = list(solution.reg_signals)
        keep, absorb = regs[0], regs[1]
        moved = list(solution.reg_signals[absorb])
        solution.merge_registers(keep, absorb)
        assert absorb not in solution.reg_signals
        twin = solution.split_register(keep, moved)
        assert solution.reg_signals[twin] == moved
        solution.check_invariants()


class TestInvariants:
    def test_initial_solution_clean(self, solution):
        solution.check_invariants()

    def test_unbound_operation_detected(self, solution):
        inst = solution.instance_of("s1")
        solution.executions[inst] = []
        with pytest.raises(SynthesisError, match="unbound"):
            solution.check_invariants()

    def test_wrong_cell_detected(self, solution, library):
        inst = solution.instance_of("m1")
        solution.instances[inst] = type(solution.instances[inst])(
            inst, cell=library.cell("add1")
        )
        with pytest.raises(SynthesisError, match="cannot run"):
            solution.check_invariants()

    def test_double_register_binding_detected(self, solution):
        regs = list(solution.reg_signals)
        sig = solution.reg_signals[regs[0]][0]
        solution.reg_signals[regs[1]].append(sig)
        with pytest.raises(SynthesisError, match="two registers"):
            solution.check_invariants()


class TestLifetimesAndFeasibility:
    def test_lifetime_ordering(self, solution):
        birth, death = solution.signal_lifetime(("m1", 0))
        assert 0 <= birth <= death

    def test_output_signal_lives_to_end(self, solution):
        sched = solution.schedule()
        _birth, death = solution.signal_lifetime(("a1", 0))
        # Held until the end of the iteration (with the one-cycle floor).
        assert death >= sched.length

    def test_conflicting_register_detected(self, solution):
        # z is held until the adder reads it (cycle 3); x is alive at
        # cycle 0 too, so one register cannot hold both.
        r_z = solution.register_of(("z", 0))
        r_x = solution.register_of(("x", 0))
        solution.merge_registers(r_z, r_x)
        assert r_z in solution.register_conflicts()
        assert not solution.is_feasible()

    def test_feasible_initial(self, solution):
        assert solution.schedule_feasible()
        assert solution.is_feasible()

    def test_deadline_cycles(self, solution):
        assert solution.deadline_cycles == 50


class TestClone:
    def test_clone_independent(self, solution):
        clone = solution.clone()
        inst = clone.instance_of("a1")
        clone.set_cell(inst, clone.library.cell("add2"))
        orig_inst = solution.instance_of("a1")
        assert solution.instances[orig_inst].cell.name == "add1"

    def test_clone_equal_schedule(self, solution):
        clone = solution.clone()
        assert clone.schedule().length == solution.schedule().length


class TestFingerprint:
    def test_stable_across_calls(self, solution):
        assert solution.fingerprint() is solution.fingerprint()

    def test_clone_has_equal_fingerprint(self, solution):
        assert solution.clone().fingerprint() == solution.fingerprint()

    def test_mutation_changes_fingerprint(self, solution, library):
        before = solution.fingerprint()
        solution.set_cell(solution.instance_of("m1"), library.cell("mult2"))
        assert solution.fingerprint() != before

    def test_register_binding_in_fingerprint(self, solution):
        before = solution.fingerprint()
        regs = list(solution.reg_signals)
        solution.merge_registers(regs[0], regs[1])
        assert solution.fingerprint() != before

    def test_operating_point_in_fingerprint(self, solution):
        clone = solution.clone()
        clone.vdd = 3.3  # fresh clone: fingerprint not yet computed
        assert clone.fingerprint() != solution.fingerprint()

    def test_clone_does_not_inherit_cached_fingerprint(self, solution):
        solution.fingerprint()
        clone = solution.clone()
        clone.clk_ns = solution.clk_ns * 2
        assert clone.fingerprint() != solution.fingerprint()
