"""Unit tests for netlist and controller construction from solutions."""

import pytest

from repro.rtl import ComponentKind
from repro.synthesis import build_controller, build_netlist
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.datapath_build import operand_port_map
from repro.synthesis.initial import initial_solution


@pytest.fixture
def solution(flat_design, library, flat_sim):
    env = SynthesisEnv(flat_design, library, "area")
    return initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)


class TestOperandPortMap:
    def test_singleton(self, solution):
        (group,) = [g for g in solution.executions[solution.instance_of("m1")]]
        ports = operand_port_map(solution, group)
        assert ports == {("m1", 0): 0, ("m1", 1): 1}

    def test_chain_numbers_external_operands(self, solution):
        # Synthetic chain (a1 then s1 is not a dependency chain here, so
        # fabricate one: a1 feeds nothing in this graph; just check the
        # numbering convention on a two-node group with one internal edge.
        ports = operand_port_map(solution, ("m1", "a1"))
        # m1's two inputs are external; a1's input from m1 is internal,
        # its other input (z) is external.
        assert ports[("m1", 0)] == 0
        assert ports[("m1", 1)] == 1
        assert ports[("a1", 1)] == 2
        assert ("a1", 0) not in ports


class TestNetlist:
    def test_components_present(self, solution):
        netlist = build_netlist(solution)
        port_ids = {c.comp_id for c in netlist.components(ComponentKind.PORT)}
        assert {"in0", "in1", "in2", "out0", "out1"} <= port_ids
        fu_cells = sorted(
            c.cell for c in netlist.components(ComponentKind.FUNCTIONAL)
        )
        assert fu_cells == ["add1", "mult1", "sub1"]

    def test_registers_match_solution(self, solution):
        netlist = build_netlist(solution)
        regs = {c.comp_id for c in netlist.components(ComponentKind.REGISTER)}
        assert regs == set(solution.reg_signals)

    def test_operand_wiring(self, solution):
        netlist = build_netlist(solution)
        m_inst = solution.instance_of("m1")
        srcs0 = netlist.sources_of(m_inst, 0)
        assert srcs0 == [(solution.register_of(("x", 0)), 0)]

    def test_output_ports_driven(self, solution):
        netlist = build_netlist(solution)
        assert netlist.sources_of("out0", 0)
        assert netlist.sources_of("out1", 0)

    def test_fully_parallel_has_no_muxes(self, solution):
        assert build_netlist(solution).mux_legs() == 0

    def test_sharing_introduces_mux(self, solution, library):
        a = solution.instance_of("a1")
        s = solution.instance_of("s1")
        solution.set_cell(a, library.cell("alu1"))
        solution.merge_instances(a, s)
        assert build_netlist(solution).mux_legs() >= 1


class TestController:
    def test_states_cover_schedule(self, solution):
        fsm = build_controller(solution)
        assert fsm.n_states == solution.schedule().length

    def test_inputs_sampled_in_first_state(self, solution):
        fsm = build_controller(solution)
        loaded = {l.register for l in fsm.state(0).loads}
        for name in solution.dfg.inputs:
            assert solution.register_of((name, 0)) in loaded

    def test_every_execution_started(self, solution):
        fsm = build_controller(solution)
        started = {s.unit for state in fsm.states for s in state.starts}
        busy = {i for i, e in solution.executions.items() if e}
        assert started == busy

    def test_results_loaded(self, solution):
        fsm = build_controller(solution)
        loads = [l for state in fsm.states for l in state.loads]
        m_inst = solution.instance_of("m1")
        assert any(l.src == m_inst for l in loads)

    def test_mux_selects_only_when_shared(self, solution, library):
        fsm = build_controller(solution)
        assert all(not state.selects for state in fsm.states)
        a = solution.instance_of("a1")
        s = solution.instance_of("s1")
        solution.set_cell(a, library.cell("alu1"))
        solution.merge_instances(a, s)
        fsm2 = build_controller(solution)
        assert any(state.selects for state in fsm2.states)
