"""Unit tests for the fluent graph builder."""

import pytest

from repro.dfg import GraphBuilder, NodeKind, Operation
from repro.errors import DFGError


class TestBuilder:
    def test_simple_expression(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        b.output("o", b.add(b.mult(x, y), x))
        dfg = b.build()
        assert len(dfg.op_nodes()) == 2
        assert dfg.inputs == ["x", "y"]
        assert dfg.outputs == ["o"]

    def test_int_operand_becomes_const(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.output("o", b.add(x, 5))
        dfg = b.build()
        consts = [n for n in dfg.nodes() if n.kind == NodeKind.CONST]
        assert len(consts) == 1
        assert consts[0].value == 5

    def test_named_nodes(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        b.output("o", b.mult(x, y, name="prod"))
        dfg = b.build()
        assert dfg.node("prod").op == Operation.MULT

    def test_hier_multi_output_ports(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        h = b.hier("bf", x, y, n_outputs=2, name="h")
        b.output("o0", h[0])
        b.output("o1", h[1])
        dfg = b.build()
        assert dfg.node("h").n_outputs == 2
        edges = {e.src_port for e in dfg.out_edges("h")}
        assert edges == {0, 1}

    def test_build_twice_rejected(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.output("o", b.neg(x))
        b.build()
        with pytest.raises(DFGError, match="called twice"):
            b.build()

    def test_bad_operand_type(self):
        b = GraphBuilder("g")
        x = b.input("x")
        with pytest.raises(DFGError, match="cannot use"):
            b.add(x, "not a wire")  # type: ignore[arg-type]

    def test_unary_ops(self):
        b = GraphBuilder("g")
        x = b.input("x")
        b.output("o", b.neg(x))
        dfg = b.build()
        assert dfg.node(dfg.in_edges("o")[0].src).op == Operation.NEG

    def test_comparison_helpers(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        b.output("lt", b.lt(x, y))
        b.output("gt", b.gt(x, y))
        dfg = b.build()
        assert len(dfg.op_nodes()) == 2
