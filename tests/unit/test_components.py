"""Unit tests for the datapath netlist model."""

import pytest

from repro.errors import DFGError
from repro.rtl import (
    ComponentKind,
    DatapathNetlist,
    WIRE_AREA_PER_CONNECTION,
)


def small_netlist() -> DatapathNetlist:
    n = DatapathNetlist("dp")
    n.add_component("in0", ComponentKind.PORT, "in")
    n.add_component("in1", ComponentKind.PORT, "in")
    n.add_component("out0", ComponentKind.PORT, "out")
    n.add_component("r1", ComponentKind.REGISTER, "reg1")
    n.add_component("r2", ComponentKind.REGISTER, "reg1")
    n.add_component("fu", ComponentKind.FUNCTIONAL, "add1")
    n.connect("in0", 0, "r1", 0)
    n.connect("in1", 0, "r2", 0)
    n.connect("r1", 0, "fu", 0)
    n.connect("r2", 0, "fu", 1)
    n.connect("fu", 0, "out0", 0)
    return n


class TestConstruction:
    def test_duplicate_component(self):
        n = small_netlist()
        with pytest.raises(DFGError, match="duplicate component"):
            n.add_component("fu", ComponentKind.FUNCTIONAL, "add1")

    def test_connect_unknown(self):
        n = small_netlist()
        with pytest.raises(DFGError, match="unknown component"):
            n.connect("ghost", 0, "fu", 0)

    def test_duplicate_connection_deduplicated(self):
        n = small_netlist()
        before = n.n_connections()
        n.connect("r1", 0, "fu", 0)
        assert n.n_connections() == before


class TestMuxInference:
    def test_single_source_no_mux(self):
        n = small_netlist()
        assert n.mux_legs() == 0

    def test_multi_source_port(self):
        n = small_netlist()
        n.connect("r2", 0, "fu", 0)  # fu.in0 now has two sources
        assert n.mux_legs() == 1
        assert n.sources_of("fu", 0) == [("r1", 0), ("r2", 0)]

    def test_three_sources_two_legs(self):
        n = small_netlist()
        n.add_component("r3", ComponentKind.REGISTER, "reg1")
        n.connect("r2", 0, "fu", 0)
        n.connect("r3", 0, "fu", 0)
        assert n.mux_legs() == 2


class TestArea:
    def test_area_composition(self, library):
        n = small_netlist()
        cells = 2 * library.register_cell.area + library.cell("add1").area
        wires = n.n_connections() * WIRE_AREA_PER_CONNECTION
        assert n.area(library) == pytest.approx(cells + wires)

    def test_mux_included(self, library):
        n = small_netlist()
        base = n.area(library)
        n.connect("r2", 0, "fu", 0)
        assert n.area(library) == pytest.approx(
            base + library.mux_cell.area + WIRE_AREA_PER_CONNECTION
        )

    def test_module_component_excluded(self, library):
        n = small_netlist()
        base = n.area(library)
        n.add_component("mod", ComponentKind.MODULE, "fancy")
        assert n.area(library) == base  # priced by the owner, not here


class TestCopy:
    def test_independent(self):
        n = small_netlist()
        clone = n.copy("c")
        clone.add_component("extra", ComponentKind.REGISTER, "reg1")
        assert not n.has_component("extra")
        assert clone.n_connections() == n.n_connections()
