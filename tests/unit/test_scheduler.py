"""Unit tests for the profile-aware list scheduler."""

import pytest

from repro.dfg import GraphBuilder
from repro.errors import ScheduleError
from repro.scheduling import TaskSpec, schedule_tasks, task_dependencies

from tests.designs import diamond_dfg as diamond


class TestBasicScheduling:
    def test_parallel_resources(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M1", 3),
            TaskSpec("t2", ("m2",), "M2", 3),
            TaskSpec("t3", ("a1",), "A", 1),
        ]
        res = schedule_tasks(dfg, tasks)
        assert res.start["t1"] == 0 and res.start["t2"] == 0
        assert res.start["t3"] == 3
        assert res.length == 4

    def test_shared_resource_serializes(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 3),
            TaskSpec("t2", ("m2",), "M", 3),
            TaskSpec("t3", ("a1",), "A", 1),
        ]
        res = schedule_tasks(dfg, tasks)
        starts = sorted([res.start["t1"], res.start["t2"]])
        assert starts == [0, 3]
        assert res.length == 7
        assert res.instance_order["M"] in (["t1", "t2"], ["t2", "t1"])

    def test_no_overlap_on_instance(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 5),
            TaskSpec("t2", ("m2",), "M", 5),
            TaskSpec("t3", ("a1",), "M", 5),
        ]
        res = schedule_tasks(dfg, tasks)
        order = res.instance_order["M"]
        for earlier, later in zip(order, order[1:]):
            assert res.start[later] >= res.finish[earlier]

    def test_critical_branch_prioritized(self):
        """The slow chain should win the shared adder on contention."""
        b = GraphBuilder("t")
        x, y = b.inputs("x", "y")
        slow1 = b.add(x, y, name="slow1")
        slow2 = b.mult(slow1, y, name="slow2")   # long tail
        fast = b.add(x, y, name="fast")          # no tail
        b.output("o1", slow2)
        b.output("o2", fast)
        dfg = b.build()
        tasks = [
            TaskSpec("ts1", ("slow1",), "A", 1),
            TaskSpec("tf", ("fast",), "A", 1),
            TaskSpec("ts2", ("slow2",), "M", 5),
        ]
        res = schedule_tasks(dfg, tasks)
        assert res.start["ts1"] < res.start["tf"]
        # slow1 at 0, slow2 at 1..6, fast fills the gap at cycle 1.
        assert res.length == 6


class TestProfileSemantics:
    def test_late_input_tolerated(self):
        """A module expecting input 1 late can start before it arrives."""
        b = GraphBuilder("t")
        p, q = b.inputs("p", "q")
        m = b.mult(p, q, name="m")
        h = b.hier("beh", p, m, name="h")
        b.output("o", h)
        dfg = b.build()
        tasks = [
            TaskSpec("tm", ("m",), "M", 3),
            TaskSpec(
                "th", ("h",), "H", 5,
                input_offsets={("h", 1): 3},
                output_latency={("h", 0): 5},
            ),
        ]
        res = schedule_tasks(dfg, tasks)
        assert res.start["th"] == 0
        assert res.length == 5

    def test_example1_arithmetic(self):
        """Example 1: profile {0,0,2,4,(7)} with arrivals (2,5,3,7) starts
        at max(2-0, 5-0, 3-2, 7-4) = 5 and finishes at 12."""
        b = GraphBuilder("t")
        ins = b.inputs("i0", "i1", "i2", "i3")
        h = b.hier("beh", *ins, name="h")
        b.output("o", h)
        dfg = b.build()
        # Feeder tasks emulate the arrival times via PASS-like ops.
        feeders = []
        arrive = {"i0": 2, "i1": 5, "i2": 3, "i3": 7}
        b2 = GraphBuilder("t2")
        ins2 = b2.inputs("i0", "i1", "i2", "i3")
        passed = [b2.neg(w, name=f"p{k}") for k, w in enumerate(ins2)]
        h2 = b2.hier("beh", *passed, name="h")
        b2.output("o", h2)
        dfg2 = b2.build()
        tasks = [
            TaskSpec(f"f{k}", (f"p{k}",), f"P{k}", arrive[f"i{k}"])
            for k in range(4)
        ]
        tasks.append(
            TaskSpec(
                "th", ("h",), "H", 7,
                input_offsets={("h", 0): 0, ("h", 1): 0, ("h", 2): 2, ("h", 3): 4},
                output_latency={("h", 0): 7},
            )
        )
        res = schedule_tasks(dfg2, tasks)
        assert res.start["th"] == 5
        assert res.avail[("h", 0)] == 12


class TestErrors:
    def test_uncovered_operation(self):
        dfg = diamond()
        tasks = [TaskSpec("t1", ("m1",), "M", 3)]
        with pytest.raises(ScheduleError, match="no task"):
            schedule_tasks(dfg, tasks)

    def test_double_coverage(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 3),
            TaskSpec("t2", ("m1", "m2"), "M", 3),
            TaskSpec("t3", ("a1",), "A", 1),
        ]
        with pytest.raises(ScheduleError, match="covered by two"):
            schedule_tasks(dfg, tasks)

    def test_task_on_non_operation(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 3),
            TaskSpec("t2", ("m2",), "M", 3),
            TaskSpec("t3", ("a1", "o"), "A", 1),
        ]
        with pytest.raises(ScheduleError, match="non-operation"):
            schedule_tasks(dfg, tasks)


class TestDependencies:
    def test_dependency_map(self):
        dfg = diamond()
        tasks = [
            TaskSpec("t1", ("m1",), "M", 3),
            TaskSpec("t2", ("m2",), "N", 3),
            TaskSpec("t3", ("a1",), "A", 1),
        ]
        deps = task_dependencies(dfg, tasks)
        assert deps["t3"] == {"t1", "t2"}
        assert deps["t1"] == set()
