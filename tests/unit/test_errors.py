"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    DFGError,
    EmbeddingError,
    LibraryError,
    ParseError,
    ReproError,
    ScheduleError,
    SynthesisError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_type",
        [DFGError, EmbeddingError, LibraryError, ParseError, ScheduleError,
         SynthesisError],
    )
    def test_all_derive_from_base(self, exc_type):
        assert issubclass(exc_type, ReproError)

    def test_single_catch_point(self):
        """Any library error is catchable via the base class."""
        with pytest.raises(ReproError):
            raise ScheduleError("boom")


class TestParseError:
    def test_line_number_prefixed(self):
        err = ParseError("bad token", line_no=17)
        assert "line 17" in str(err)
        assert err.line_no == 17

    def test_no_line_number(self):
        err = ParseError("bad design")
        assert err.line_no is None
        assert str(err) == "bad design"
