"""Unit tests for variable-depth iterative improvement."""

import pytest

from repro.synthesis import EvaluationContext, improve_solution
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.improve import PassRecord
from repro.synthesis.initial import initial_solution


@pytest.fixture
def setup(flat_design, library, flat_sim):
    config = SynthesisConfig(max_moves=6, max_passes=3)
    env = SynthesisEnv(flat_design, library, "area", config)
    sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
    return env, sol, flat_sim


class TestImprovement:
    def test_never_worse_than_initial(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        before = ctx.cost(sol)
        improved = improve_solution(env, sol, sim)
        assert ctx.cost(improved) <= before

    def test_area_mode_shares_resources(self, setup):
        env, sol, sim = setup
        improved = improve_solution(env, sol, sim)
        # The fully parallel start has one instance per op and one
        # register per signal; area optimization must consolidate.
        assert (
            len(improved.instances) < len(sol.instances)
            or len(improved.reg_signals) < len(sol.reg_signals)
            or env.context(sim).evaluate(improved).area
            < env.context(sim).evaluate(sol).area
        )

    def test_result_feasible_and_consistent(self, setup):
        env, sol, sim = setup
        improved = improve_solution(env, sol, sim)
        improved.check_invariants()
        assert improved.is_feasible()

    def test_history_recorded(self, setup):
        env, sol, sim = setup
        history: list[PassRecord] = []
        improve_solution(env, sol, sim, history=history)
        assert history
        for record in history:
            assert len(record.moves) == len(record.costs)
            assert 0 <= record.committed_prefix <= len(record.moves)

    def test_committed_prefix_is_best(self, setup):
        env, sol, sim = setup
        history: list[PassRecord] = []
        improve_solution(env, sol, sim, history=history)
        for record in history:
            if record.committed_prefix:
                best = min(record.costs)
                assert record.costs[record.committed_prefix - 1] == best

    def test_negative_gain_moves_allowed_in_pass(self, setup):
        """KL signature: inside a pass, costs may go up before down."""
        env, sol, sim = setup
        history: list[PassRecord] = []
        improve_solution(env, sol, sim, history=history)
        diffs = []
        for record in history:
            prev = None
            for cost in record.costs:
                if prev is not None:
                    diffs.append(cost - prev)
                prev = cost
        # We cannot force a specific trajectory, but the machinery must
        # at least have recorded multi-move passes.
        assert diffs

    def test_pass_and_move_limits_respected(self, flat_design, library, flat_sim):
        config = SynthesisConfig(max_moves=2, max_passes=1)
        env = SynthesisEnv(flat_design, library, "area", config)
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        history: list[PassRecord] = []
        improve_solution(env, sol, flat_sim, history=history)
        assert len(history) <= 1
        assert all(len(r.moves) <= 2 for r in history)


class TestInfeasibleRescue:
    def test_rescue_via_moves(self, flat_design, library, flat_sim):
        """An initial solution slightly over budget is repaired if a
        faster/restructured binding exists."""
        env = SynthesisEnv(flat_design, library, "power", SynthesisConfig())
        # Deadline of 4 cycles: mult1 (3) + add1 (1) = 4 fits, but only
        # just; make it 3 so the initial misses, then widen via clock...
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 40.0)
        assert sol.is_feasible()  # 4 cycles in 40 ns at 10 ns clock
        tight = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 30.0)
        if not tight.is_feasible():
            improved = improve_solution(env, tight, flat_sim)
            # mult1+add1 cannot beat 4 cycles; rescue legitimately fails,
            # but the engine must not crash and must not claim success.
            assert not improved.is_feasible() or improved.schedule().length <= 3
