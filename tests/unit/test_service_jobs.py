"""Unit tests for the service job schema (requests, fingerprints)."""

import dataclasses

import pytest

from repro.errors import ServiceError
from repro.library import default_library
from repro.reporting import quick_config
from repro.service import JobRequest, request_fingerprint, resolve_job_design
from repro.service.jobs import JobRecord

DESIGN_TEXT = """
design tiny
top main

dfg main
  input x
  input y
  op m mult x y
  op a add m y
  output out a
end
"""


def _request(**overrides):
    base = dict(design_text=DESIGN_TEXT, laxity_factor=2.0)
    base.update(overrides)
    return JobRequest(**base)


class TestJobRequestValidation:
    def test_valid_request_passes(self):
        _request().validate()

    def test_requires_exactly_one_source(self):
        with pytest.raises(ServiceError, match="exactly one"):
            JobRequest(laxity_factor=2.0).validate()
        with pytest.raises(ServiceError, match="exactly one"):
            _request(benchmark="lat").validate()

    def test_requires_exactly_one_constraint(self):
        with pytest.raises(ServiceError, match="exactly one"):
            _request(laxity_factor=None).validate()
        with pytest.raises(ServiceError, match="exactly one"):
            _request(sampling_ns=400.0).validate()

    @pytest.mark.parametrize(
        "field,value",
        [("objective", "speed"), ("traces", "pink"), ("effort", "extreme"),
         ("samples", 0), ("policy", "no-such-policy"), ("portfolio", 0)],
    )
    def test_rejects_bad_knobs(self, field, value):
        with pytest.raises(ServiceError):
            _request(**{field: value}).validate()

    def test_accepts_registered_policies(self):
        from repro.search import available_policies

        for policy in available_policies():
            _request(policy=policy).validate()

    def test_portfolio_incompatible_with_flatten(self):
        _request(portfolio=3).validate()
        with pytest.raises(ServiceError, match="flatten"):
            _request(portfolio=3, flatten=True).validate()


class TestJobRequestWireFormat:
    def test_round_trip(self):
        request = _request(verify=True, samples=16)
        assert JobRequest.from_dict(request.to_dict()) == request

    def test_unknown_keys_rejected_not_dropped(self):
        payload = _request().to_dict()
        payload["laxity"] = 2.0  # typo for laxity_factor
        with pytest.raises(ServiceError, match="unknown job request field"):
            JobRequest.from_dict(payload)

    def test_non_object_body_rejected(self):
        with pytest.raises(ServiceError, match="JSON object"):
            JobRequest.from_dict(["not", "a", "dict"])


class TestResolveJobDesign:
    def test_design_text(self):
        design = resolve_job_design(_request())
        assert design.name == "tiny"

    def test_benchmark(self):
        design = resolve_job_design(
            JobRequest(benchmark="lat", laxity_factor=2.0)
        )
        assert design.name == "lat"

    def test_unknown_benchmark(self):
        with pytest.raises(ServiceError, match="unknown benchmark"):
            resolve_job_design(
                JobRequest(benchmark="nope", laxity_factor=2.0)
            )

    def test_gen_seed(self):
        design = resolve_job_design(
            JobRequest(gen_seed=3, laxity_factor=2.0)
        )
        assert design.total_operations() > 0

    def test_bad_design_text(self):
        with pytest.raises(Exception):
            resolve_job_design(
                JobRequest(design_text="dfg x\n nonsense\n", laxity_factor=2.0)
            )


class TestRequestFingerprint:
    def _fingerprint(self, request):
        return request_fingerprint(
            request, resolve_job_design(request),
            default_library(), quick_config(),
        )

    def test_deterministic(self):
        assert self._fingerprint(_request()) == self._fingerprint(_request())

    @pytest.mark.parametrize(
        "override",
        [dict(objective="area"), dict(samples=32), dict(seed=1),
         dict(traces="white"), dict(verify=True), dict(trace=True),
         dict(flatten=True), dict(laxity_factor=3.0),
         dict(laxity_factor=None, sampling_ns=500.0),
         dict(policy="greedy"), dict(portfolio=3), dict(priors=True)],
    )
    def test_result_shaping_knobs_change_identity(self, override):
        assert self._fingerprint(_request(**override)) != \
            self._fingerprint(_request())

    def test_source_spelling_does_not_change_identity(self):
        """Inline text and the gen seed that emits it coalesce."""
        from repro.gen import GenConfig, generate_design

        gen = generate_design(3, GenConfig())
        by_seed = _request(design_text=None, gen_seed=3)
        by_text = _request(design_text=gen.text)
        assert self._fingerprint(by_seed) == self._fingerprint(by_text)


class TestJobRecord:
    def _record(self, **overrides):
        base = dict(
            job_id="j1", fingerprint="fp", state="done",
            request=_request().to_dict(), submitted_at=1.0,
            result={"area": 10.0, "power": 0.5, "vdd": 3.3,
                    "clk_ns": 9.0, "elapsed_s": 0.1, "netlist": "..."},
        )
        base.update(overrides)
        return JobRecord(**base)

    def test_status_view_summarizes_without_shipping_result(self):
        view = self._record().as_dict()
        assert "result" not in view
        assert view["summary"]["area"] == 10.0

    def test_result_rides_only_on_demand(self):
        view = self._record().as_dict(include_result=True)
        assert view["result"]["netlist"] == "..."

    def test_no_summary_before_completion(self):
        view = self._record(state="running", result=None).as_dict()
        assert "summary" not in view and view["state"] == "running"

    def test_wire_request_is_plain_data(self):
        record = self._record()
        assert record.request == dataclasses.asdict(_request())
