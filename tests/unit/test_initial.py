"""Unit tests for INITIAL_SOLUTION."""

import pytest

from repro.errors import SynthesisError
from repro.dfg import Design, GraphBuilder
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_module_for, initial_solution


class TestFlatInitial:
    def test_fully_parallel(self, flat_design, library, flat_sim):
        env = SynthesisEnv(flat_design, library, "power")
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        # One instance per operation, one register per signal.
        assert len(sol.instances) == len(flat_design.top.operation_nodes())
        assert all(len(e) == 1 for e in sol.executions.values())
        assert all(len(s) == 1 for s in sol.reg_signals.values())

    def test_fastest_cells_used(self, flat_design, library, flat_sim):
        env = SynthesisEnv(flat_design, library, "power")
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        cells = {i.cell.name for i in sol.instances.values()}
        assert cells == {"mult1", "add1", "sub1"}


class TestHierInitial:
    def test_modules_synthesized_for_behaviors(
        self, butterfly_design, library, butterfly_sim
    ):
        env = SynthesisEnv(butterfly_design, library, "power")
        sol = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        modules = [i for i in sol.instances.values() if i.is_module]
        assert len(modules) == 2
        # Same behavior -> the synthesized module is cached and shared.
        assert modules[0].module is modules[1].module

    def test_library_module_preferred_when_faster(
        self, butterfly_design, library, butterfly_sim
    ):
        from repro.rtl import DatapathNetlist, Profile, RTLModule

        fast = RTLModule(
            "turbo_bf",
            "butterfly",
            # Impossibly fast: must win the fastest-implementation contest.
            Profile((0.0, 0.0), (1.0, 1.0)),
            cap_internal=1.0,
            netlist=DatapathNetlist("turbo_bf"),
        )
        library.add_complex_module(fast)
        env = SynthesisEnv(butterfly_design, library, "power")
        sol = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        names = {i.module.name for i in sol.instances.values() if i.is_module}
        assert names == {"turbo_bf"}

    def test_port_mismatch_module_skipped(
        self, butterfly_design, library, butterfly_sim
    ):
        from repro.rtl import DatapathNetlist, Profile, RTLModule

        wrong = RTLModule(
            "bad_bf",
            "butterfly",
            Profile((0.0,), (1.0,)),  # one input, one output: mismatched
            cap_internal=1.0,
            netlist=DatapathNetlist("bad_bf"),
        )
        library.add_complex_module(wrong)
        env = SynthesisEnv(butterfly_design, library, "power")
        sol = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        names = {i.module.name for i in sol.instances.values() if i.is_module}
        assert "bad_bf" not in names

    def test_missing_behavior_fails(self, library):
        design = Design("d")
        b = GraphBuilder("top")
        x = b.input("x")
        b.output("o", b.hier("mystery", x, name="h"))
        design.add_dfg(b.build(), top=True)
        env = SynthesisEnv(design, library, "power")

        import numpy as np

        from repro.power import simulate_subgraph

        # Simulation itself would fail on the unknown behavior, so drive
        # initial_module_for directly with a stub trace for the input.
        from repro.power.simulate import SimTrace

        sim = SimTrace(4)
        sim.put((), ("x", 0), np.zeros(4, dtype=np.int64))
        node = design.top.node("h")
        with pytest.raises(SynthesisError, match="no implementation"):
            initial_module_for(env, node, design.top, sim, 10.0, 5.0)
