"""Unit tests for complex RTL modules."""

import pytest

from repro.errors import LibraryError
from repro.library import IDLE_FRACTION
from repro.rtl import ComponentKind, DatapathNetlist, Profile, RTLModule


def make_module() -> RTLModule:
    netlist = DatapathNetlist("m")
    netlist.add_component("in0", ComponentKind.PORT, "in")
    netlist.add_component("out0", ComponentKind.PORT, "out")
    netlist.add_component("fu", ComponentKind.FUNCTIONAL, "add1")
    netlist.add_component("r", ComponentKind.REGISTER, "reg1")
    netlist.connect("in0", 0, "fu", 0)
    netlist.connect("fu", 0, "r", 0)
    netlist.connect("r", 0, "out0", 0)
    return RTLModule(
        name="m",
        behavior="beh",
        profile=Profile((0.0,), (25.0,)),
        cap_internal=3.0,
        netlist=netlist,
    )


class TestBehaviors:
    def test_primary_behavior(self):
        m = make_module()
        assert m.supports("beh")
        assert m.behaviors() == ["beh"]
        assert m.profile().latency_ns == 25.0

    def test_add_behavior(self):
        m = make_module()
        m.add_behavior("beh2", Profile((0.0, 0.0), (40.0,)), 4.0)
        assert m.supports("beh2")
        assert m.cap_internal("beh2") == 4.0
        assert m.profile("beh2").latency_ns == 40.0

    def test_unknown_behavior_raises(self):
        m = make_module()
        with pytest.raises(LibraryError, match="does not implement"):
            m.profile("ghost")


class TestEnergyAndArea:
    def test_energy_formula(self):
        m = make_module()
        energy = m.energy_per_exec(5.0, 0.4)
        assert energy == pytest.approx(3.0 * (IDLE_FRACTION + 0.4) * 25.0)

    def test_energy_quadratic_in_vdd(self):
        m = make_module()
        assert m.energy_per_exec(5.0, 0.4) / m.energy_per_exec(2.5, 0.4) == (
            pytest.approx(4.0)
        )

    def test_activity_clamped(self):
        m = make_module()
        assert m.energy_per_exec(5.0, 1.7) == m.energy_per_exec(5.0, 1.0)

    def test_area_from_netlist(self, library):
        m = make_module()
        assert m.area(library) == m.netlist.area(library)
