"""Unit tests for trace-mined move priors (repro.search.priors).

Covers the slack-regime classifier, the statistics table and its wire
format, mining from synthetic events and from the checked-in v1/v3
sample traces (the shared reader makes old schemas mine identically),
store persistence with the cross-design aggregate fallback, and the
priors-guided policy's two levers (family order, candidate dropping).
"""

from __future__ import annotations

from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.search.priors import (
    AGGREGATE_FINGERPRINT,
    KindStats,
    PriorsPolicy,
    PriorsTable,
    load_priors,
    mine_events,
    save_priors,
    slack_regime,
)
from repro.synthesis.store import SynthesisStore

DATA = Path(__file__).parent.parent / "data" / "traces"


class TestSlackRegime:
    def test_boundaries(self):
        assert slack_regime(10, 10) == "tight"      # ratio 1.0
        assert slack_regime(23, 20) == "medium"     # exactly 1.15
        assert slack_regime(12, 10) == "medium"     # ratio 1.2
        assert slack_regime(16, 10) == "loose"      # exactly 1.6
        assert slack_regime(40, 10) == "loose"

    def test_zero_schedule_does_not_divide_by_zero(self):
        assert slack_regime(5, 0) == "loose"


class TestPriorsTable:
    def test_record_tracks_commitment_separately(self):
        table = PriorsTable()
        table.record("medium", "A-cell", 2.0, committed=True)
        table.record("medium", "A-cell", -1.0, committed=False)
        entry = table.stats[("medium", "A-cell")]
        assert entry == KindStats(chosen=2, committed=1, gain=1.0,
                                  committed_gain=2.0)
        assert entry.score == pytest.approx(1.0)

    def test_merge_accumulates(self):
        a = PriorsTable(n_runs=1)
        a.record("tight", "A-cell", 1.0, committed=True)
        b = PriorsTable(n_runs=2)
        b.record("tight", "A-cell", 3.0, committed=True)
        b.record("loose", "C-share-fu", 0.5, committed=False)
        a.merge(b)
        assert a.n_runs == 3
        assert a.stats[("tight", "A-cell")].chosen == 2
        assert a.stats[("tight", "A-cell")].committed_gain == 4.0
        assert ("loose", "C-share-fu") in a.stats

    def test_wire_roundtrip(self):
        table = PriorsTable(n_runs=4)
        table.record("medium", "C-share-reg", 1.5, committed=True)
        table.record("tight", "D-split-fu", -0.5, committed=False)
        restored = PriorsTable.from_dict(table.as_dict())
        assert restored.n_runs == 4
        assert restored.stats == table.stats

    def test_from_dict_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="format"):
            PriorsTable.from_dict({"format": 99, "stats": {}})

    def test_family_score_aggregates_kind_prefixes(self):
        table = PriorsTable()
        table.record("medium", "C-share-fu", 2.0, committed=True)
        table.record("medium", "C-share-reg", 1.0, committed=True)
        table.record("medium", "A-cell", 4.0, committed=True)
        assert table.family_score("medium", "C") == pytest.approx(1.5)
        assert table.family_score("medium", "A") == pytest.approx(4.0)
        assert table.family_score("tight", "C") == 0.0


def _synthetic_trace():
    """Two points (tight and loose), one pass each, partial commits."""
    return [
        {"k": "run_start", "schema": 3, "design": "t", "objective": "power",
         "sampling_ns": 100.0, "flattened": False, "n_points": 2,
         "config": {}},
        {"k": "init", "point": 0, "cycles": 10, "budget": 10},
        {"k": "step", "point": 0, "pass": 0, "step": 0, "kind": "A-cell",
         "gain": 2.0},
        {"k": "step", "point": 0, "pass": 0, "step": 1, "kind": "C-share-fu",
         "gain": -1.0},
        {"k": "pass_end", "point": 0, "pass": 0, "steps": 2, "committed": 1,
         "cost": 1.0},
        {"k": "init", "point": 1, "cycles": 10, "budget": 20},
        {"k": "step", "point": 1, "pass": 0, "step": 0, "kind": "C-share-fu",
         "gain": 3.0},
        {"k": "pass_end", "point": 1, "pass": 0, "steps": 1, "committed": 1,
         "cost": 0.5},
    ]


class TestMining:
    def test_mine_synthetic_events(self):
        table = mine_events(_synthetic_trace())
        assert table.n_runs == 1
        tight_a = table.stats[("tight", "A-cell")]
        assert tight_a.chosen == 1 and tight_a.committed == 1
        assert tight_a.committed_gain == 2.0
        # Step 1 fell outside the committed prefix of 1.
        tight_c = table.stats[("tight", "C-share-fu")]
        assert tight_c.chosen == 1 and tight_c.committed == 0
        assert tight_c.committed_gain == 0.0
        loose_c = table.stats[("loose", "C-share-fu")]
        assert loose_c.committed == 1

    def test_points_without_init_are_skipped(self):
        events = [e for e in _synthetic_trace()
                  if not (e["k"] == "init" and e["point"] == 0)]
        table = mine_events(events)
        assert all(kind != "A-cell" for _, kind in table.stats)

    @pytest.mark.parametrize("sample", ["sample_v1.jsonl", "sample_v3.jsonl"])
    def test_mine_checked_in_samples(self, sample):
        table = mine_events(DATA / sample)
        assert table.n_runs == 1
        assert table.stats, "sample trace mined no statistics"
        assert all(entry.chosen >= entry.committed
                   for entry in table.stats.values())

    def test_v1_and_v3_mine_identically(self):
        assert (mine_events(DATA / "sample_v1.jsonl").stats
                == mine_events(DATA / "sample_v3.jsonl").stats)


class TestPersistence:
    def test_save_and_load_roundtrip(self):
        store = SynthesisStore()
        table = PriorsTable(n_runs=1)
        table.record("medium", "A-cell", 1.0, committed=True)
        save_priors(store, "fp-a", table)
        loaded = load_priors(store, "fp-a")
        assert loaded is not None
        assert loaded.stats == table.stats

    def test_save_merges_into_existing_entry(self):
        store = SynthesisStore()
        first = PriorsTable(n_runs=1)
        first.record("medium", "A-cell", 1.0, committed=True)
        save_priors(store, "fp-a", first)
        second = PriorsTable(n_runs=1)
        second.record("medium", "A-cell", 3.0, committed=True)
        save_priors(store, "fp-a", second)
        loaded = load_priors(store, "fp-a")
        assert loaded.n_runs == 2
        assert loaded.stats[("medium", "A-cell")].chosen == 2
        assert loaded.stats[("medium", "A-cell")].committed_gain == 4.0

    def test_unseen_design_falls_back_to_aggregate(self):
        store = SynthesisStore()
        table = PriorsTable(n_runs=1)
        table.record("loose", "C-share-reg", 2.0, committed=True)
        save_priors(store, "fp-a", table)
        fallback = load_priors(store, "fp-never-seen")
        assert fallback is not None
        assert ("loose", "C-share-reg") in fallback.stats
        assert load_priors(store, "fp-never-seen",
                           aggregate_fallback=False) is None

    def test_aggregate_accumulates_across_designs(self):
        store = SynthesisStore()
        for fp in ("fp-a", "fp-b"):
            table = PriorsTable(n_runs=1)
            table.record("medium", "A-cell", 1.0, committed=True)
            save_priors(store, fp, table)
        aggregate = load_priors(store, AGGREGATE_FINGERPRINT,
                                aggregate_fallback=False)
        assert aggregate.n_runs == 2
        assert aggregate.stats[("medium", "A-cell")].chosen == 2

    def test_corrupt_payload_loads_as_cold(self):
        from repro.search.priors import _priors_content

        store = SynthesisStore()
        store.replace("priors", _priors_content("fp-bad"), {"format": 99})
        assert load_priors(store, "fp-bad",
                           aggregate_fallback=False) is None


def _policy_with(table: PriorsTable, **params) -> PriorsPolicy:
    return PriorsPolicy({"table": table.as_dict(), **params})


class TestPriorsPolicy:
    def test_cold_policy_behaves_like_default(self):
        policy = PriorsPolicy()
        assert policy.table is None
        assert policy.family_order() == ("ab", "share")
        cands = [SimpleNamespace(kind="A-cell")] * 3
        assert policy.rank_candidates("ab", cands, 0, 0) is cands

    def test_family_order_prefers_mined_winner(self):
        table = PriorsTable()
        for _ in range(6):
            table.record("loose", "C-share-fu", 2.0, committed=True)
            table.record("loose", "A-cell", 0.1, committed=True)
        policy = _policy_with(table)
        policy._regime = "loose"
        assert policy.family_order() == ("share", "ab")
        policy._regime = "tight"  # no data there: default order
        assert policy.family_order() == ("ab", "share")

    def test_drops_reliably_unprofitable_kinds(self):
        table = PriorsTable()
        for _ in range(6):
            table.record("medium", "D-split-fu", -1.0, committed=False)
        table.record("medium", "A-cell", 1.0, committed=True)
        policy = _policy_with(table)
        split = SimpleNamespace(kind="D-split-fu")
        cell = SimpleNamespace(kind="A-cell")
        kept = policy.rank_candidates("share", [split, cell, split], 0, 0)
        assert list(kept) == [cell]

    def test_low_support_kinds_are_not_dropped(self):
        table = PriorsTable()
        for _ in range(3):  # below the default min_support of 5
            table.record("medium", "D-split-fu", -1.0, committed=False)
        policy = _policy_with(table)
        cands = [SimpleNamespace(kind="D-split-fu"),
                 SimpleNamespace(kind="A-cell")]
        assert list(policy.rank_candidates("share", cands, 0, 0)) == cands

    def test_never_empties_a_family(self):
        table = PriorsTable()
        for _ in range(6):
            table.record("medium", "D-split-fu", -1.0, committed=False)
        policy = _policy_with(table)
        cands = [SimpleNamespace(kind="D-split-fu")] * 2
        assert policy.rank_candidates("split", cands, 0, 0) is cands

    def test_min_support_param_is_respected(self):
        table = PriorsTable()
        for _ in range(3):
            table.record("medium", "D-split-fu", -1.0, committed=False)
        table.record("medium", "A-cell", 1.0, committed=True)
        policy = _policy_with(table, min_support=2)
        cands = [SimpleNamespace(kind="D-split-fu"),
                 SimpleNamespace(kind="A-cell")]
        assert [c.kind for c in policy.rank_candidates("share", cands, 0, 0)] \
            == ["A-cell"]
