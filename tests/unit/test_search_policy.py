"""Unit tests for the search-policy layer (repro.search.policy).

The default policy must be an exact no-op at every hook (the golden
trace suite proves the byte-level consequence; these tests pin the
hook-level contract), the registry must resolve and reject names
predictably, and the built-in biased policies must implement exactly
the bias their docstring claims.  Cross-pollination — built into the
base class — is tested against a real store with fake environments.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.dfg import Design, GraphBuilder
from repro.search import (
    DefaultPolicy,
    SearchPolicy,
    available_policies,
    make_policy,
    register_policy,
)
from repro.search.policy import _REGISTRY
from repro.synthesis.store import MISSING, SynthesisStore


def _mac_design(name: str = "mac") -> Design:
    b = GraphBuilder(name)
    x, y, z = b.inputs("x", "y", "z")
    b.output("o", b.add(b.mult(x, y), z))
    design = Design(name)
    design.add_dfg(b.build(), top=True)
    return design


def _fake_solution(design: Design, vdd=5.0, clk_ns=10.0, sampling_ns=400.0):
    return SimpleNamespace(
        vdd=vdd, clk_ns=clk_ns, sampling_ns=sampling_ns, dfg=design.top
    )


def _fake_env(store: SynthesisStore, design: Design):
    return SimpleNamespace(store=store, design=design)


class TestRegistry:
    def test_builtin_policies_registered(self):
        names = available_policies()
        for expected in ("default", "share-first", "split-eager", "deep",
                         "greedy", "priors"):
            assert expected in names

    def test_make_policy_resolves_and_passes_params(self):
        policy = make_policy("default", {"pollinate": "tok"})
        assert isinstance(policy, DefaultPolicy)
        assert policy.params == {"pollinate": "tok"}

    def test_make_policy_unknown_name_lists_registry(self):
        with pytest.raises(ValueError, match="default"):
            make_policy("no-such-policy")

    def test_register_policy_decorator(self):
        @register_policy("test-custom")
        class Custom(SearchPolicy):
            pass

        try:
            assert "test-custom" in available_policies()
            assert Custom.name == "test-custom"
            assert isinstance(make_policy("test-custom"), Custom)
        finally:
            del _REGISTRY["test-custom"]


class TestDefaultPolicyIsIdentity:
    def test_budgets_passthrough(self):
        assert DefaultPolicy().budgets(8, 24) == (8, 24)

    def test_family_order_is_papers(self):
        assert DefaultPolicy().family_order() == ("ab", "share")

    def test_rank_candidates_returns_input_unchanged(self):
        cands = [SimpleNamespace(kind="A-cell"), SimpleNamespace(kind="C-chain")]
        assert DefaultPolicy().rank_candidates("ab", cands, 0, 0) is cands

    def test_try_split_is_the_paper_rule(self):
        policy = DefaultPolicy()
        # No sharing move at all -> fall back to splitting.
        assert policy.try_split(None, 10.0)
        # Best sharing move loses cost -> split.
        assert policy.try_split(SimpleNamespace(cost_after=10.5), 10.0)
        # Best sharing move gains -> no split.
        assert not policy.try_split(SimpleNamespace(cost_after=9.5), 10.0)

    def test_never_terminates_early(self):
        policy = DefaultPolicy()
        assert not policy.stop_step(SimpleNamespace(cost_after=99.0), 1.0, 0)
        assert not policy.stop_pass(0, 1.0)

    def test_seed_solution_passthrough_without_token(self):
        design = _mac_design()
        solution = _fake_solution(design)
        policy = DefaultPolicy().bind(_fake_env(None, design))
        ctx = SimpleNamespace(cost=lambda s: pytest.fail("must not price"))
        assert policy.seed_solution(ctx, solution, 1.0) == (solution, 1.0)


class TestBiasedPolicies:
    def test_share_first_orders_sharing_ahead(self):
        assert make_policy("share-first").family_order() == ("share", "ab")

    def test_split_eager_discovers_splits_unconditionally(self):
        assert make_policy("split-eager").family_order() == (
            "ab", "share", "split"
        )

    def test_deep_doubles_passes_and_truncates_candidates(self):
        policy = make_policy("deep")
        assert policy.budgets(4, 10) == (8, 10)
        short = [SimpleNamespace(kind="A-cell")] * 4
        assert policy.rank_candidates("ab", short, 0, 0) is short
        long = [SimpleNamespace(kind="A-cell")] * 10
        assert len(policy.rank_candidates("ab", long, 0, 0)) == 5

    def test_greedy_stops_on_first_nonimproving_move(self):
        policy = make_policy("greedy")
        assert policy.budgets(4, 10) == (8, 10)
        assert policy.stop_step(SimpleNamespace(cost_after=10.0), 10.0, 0)
        assert policy.stop_step(SimpleNamespace(cost_after=10.1), 10.0, 0)
        assert not policy.stop_step(SimpleNamespace(cost_after=9.9), 10.0, 0)


class TestCrossPollination:
    def _bound(self, store, design, token="tok"):
        return SearchPolicy({"pollinate": token}).bind(
            _fake_env(store, design)
        )

    def test_publish_then_seed_adopts_better_incumbent(self):
        store = SynthesisStore()
        design = _mac_design()
        policy = self._bound(store, design)
        published = _fake_solution(design)
        policy.publish(published, 5.0)

        fresh = _fake_solution(design)
        ctx = SimpleNamespace(cost=lambda s: 5.0)
        adopted, cost = policy.seed_solution(ctx, fresh, 9.0)
        # The store round-trips values through pickle, so the adopted
        # incumbent is an equal copy, not the published object.
        assert adopted is not fresh
        assert cost == 5.0

    def test_seed_keeps_own_solution_when_incumbent_not_better(self):
        store = SynthesisStore()
        design = _mac_design()
        policy = self._bound(store, design)
        policy.publish(_fake_solution(design), 5.0)
        fresh = _fake_solution(design)
        ctx = SimpleNamespace(cost=lambda s: 5.0)
        assert policy.seed_solution(ctx, fresh, 4.0) == (fresh, 4.0)

    def test_publish_keeps_the_cheaper_incumbent(self):
        store = SynthesisStore()
        design = _mac_design()
        policy = self._bound(store, design)
        best = _fake_solution(design)
        policy.publish(best, 3.0)
        policy.publish(_fake_solution(design), 4.0)  # worse: ignored
        key = policy._pollination_key("tok", best)
        held = store.load("portfolio", key)
        assert held is not MISSING
        assert held[0] == 3.0

    def test_publish_rejects_infeasible_cost(self):
        store = SynthesisStore()
        design = _mac_design()
        policy = self._bound(store, design)
        solution = _fake_solution(design)
        policy.publish(solution, float("inf"))
        key = policy._pollination_key("tok", solution)
        assert store.load("portfolio", key) is MISSING

    def test_incumbent_for_different_design_is_ignored(self):
        store = SynthesisStore()
        published_design = _mac_design("one")
        policy = self._bound(store, published_design)
        policy.publish(_fake_solution(published_design), 1.0)

        other = GraphBuilder("other")
        x, y = other.inputs("x", "y")
        other.output("o", other.mult(x, y))
        other_design = Design("other")
        other_design.add_dfg(other.build(), top=True)
        reader = self._bound(store, other_design)
        fresh = _fake_solution(other_design)
        ctx = SimpleNamespace(cost=lambda s: pytest.fail("must not price"))
        assert reader.seed_solution(ctx, fresh, 9.0) == (fresh, 9.0)

    def test_points_do_not_alias_across_operating_points(self):
        store = SynthesisStore()
        design = _mac_design()
        policy = self._bound(store, design)
        policy.publish(_fake_solution(design, vdd=5.0), 1.0)
        other_point = _fake_solution(design, vdd=3.3)
        assert store.load(
            "portfolio", policy._pollination_key("tok", other_point)
        ) is MISSING
