"""Unit tests for the cost function (area + trace-driven power)."""

import math

import pytest

from repro.rtl.components import DatapathNetlist
from repro.synthesis import EvaluationContext, area_of
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution


@pytest.fixture
def env(flat_design, library):
    return SynthesisEnv(flat_design, library, "power")


@pytest.fixture
def solution(env, flat_design, flat_sim):
    return initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)


@pytest.fixture
def ctx(flat_sim):
    return EvaluationContext(flat_sim, (), "power")


class TestEvaluate:
    def test_metrics_positive(self, ctx, solution):
        m = ctx.evaluate(solution)
        assert m.area > 0
        assert m.power > 0
        assert m.energy_per_sample > 0
        assert m.feasible

    def test_area_covers_datapath_plus_controller(self, ctx, solution):
        m = ctx.evaluate(solution)
        datapath = area_of(solution)
        assert m.area > datapath  # controller estimate included
        assert m.area < datapath * 1.5

    def test_power_decreases_with_vdd(self, ctx, solution):
        high = ctx.evaluate(solution).power
        low_sol = solution.clone()
        low_sol.vdd = 3.3
        low_sol.clk_ns = solution.clk_ns * 2.0  # keep cycle counts safe
        low = ctx.evaluate(low_sol).power
        assert low < high

    def test_smaller_cell_smaller_area(self, ctx, solution, library):
        base = ctx.evaluate(solution).area
        clone = solution.clone()
        clone.set_cell(clone.instance_of("m1"), library.cell("mult2"))
        assert ctx.evaluate(clone).area < base

    def test_infeasible_when_deadline_tight(self, ctx, solution):
        tight = solution.clone()
        tight.sampling_ns = 10.0  # one cycle: impossible
        m = ctx.evaluate(tight)
        assert not m.feasible
        assert m.violation > 0


class TestCostCache:
    def test_reevaluation_hits_cache(self, ctx, solution):
        first = ctx.evaluate(solution)
        second = ctx.evaluate(solution.clone())
        assert second is first  # served from the cache, not recomputed
        assert ctx.telemetry.evaluations == 2
        assert ctx.telemetry.cache_hits == 1
        assert ctx.telemetry.cache_misses == 1

    def test_mutated_clone_misses(self, ctx, solution, library):
        ctx.evaluate(solution)
        clone = solution.clone()
        clone.set_cell(clone.instance_of("m1"), library.cell("mult2"))
        ctx.evaluate(clone)
        assert ctx.telemetry.cache_hits == 0
        assert ctx.telemetry.cache_misses == 2

    def test_different_operating_point_misses(self, ctx, solution):
        base = ctx.evaluate(solution)
        clone = solution.clone()
        clone.vdd = 3.3
        clone.clk_ns = solution.clk_ns * 2.0
        other = ctx.evaluate(clone)
        assert other is not base
        assert ctx.telemetry.cache_hits == 0

    def test_zero_cache_size_disables_memoization(self, flat_sim, solution):
        ctx = EvaluationContext(flat_sim, (), "power", cache_size=0)
        first = ctx.evaluate(solution)
        second = ctx.evaluate(solution.clone())
        assert second is not first
        assert ctx.telemetry.cache_misses == 2
        assert second.power == first.power  # still deterministic

    def test_fanin_map_computed_once_in_evaluator(
        self, ctx, solution, monkeypatch
    ):
        """Regression: the mux loop used to re-call fanin_ports() (a 4th
        time) and shadow the dict captured by the glitches() closure.
        Legitimate calls during one evaluation: the evaluator's own map,
        netlist.area()'s mux inference, and mux_legs() for the
        controller estimate."""
        calls = []
        original = DatapathNetlist.fanin_ports

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(DatapathNetlist, "fanin_ports", counting)
        ctx.evaluate(solution)
        assert len(calls) == 3


class TestObjectiveValue:
    def test_infeasible_cost_is_huge_but_ordered(self, ctx, solution):
        bad1 = solution.clone()
        bad1.sampling_ns = solution.schedule().length * 10.0 - 10.0  # barely miss
        bad2 = solution.clone()
        bad2.sampling_ns = 20.0  # miss badly
        c1 = ctx.cost(bad1)
        c2 = ctx.cost(bad2)
        good = ctx.cost(solution)
        assert good < 1e6 < c1 < c2
        assert not math.isinf(c2)

    def test_objective_selects_metric(self, flat_sim, solution):
        area_ctx = EvaluationContext(flat_sim, (), "area")
        power_ctx = EvaluationContext(flat_sim, (), "power")
        m = area_ctx.evaluate(solution)
        # Costs equal the primary metric up to the tiny tiebreak term.
        assert area_ctx.cost(solution) == pytest.approx(m.area, abs=1e-3 * m.area + 1e-3)
        assert power_ctx.cost(solution) == pytest.approx(m.power, abs=1e-5 * m.area)


class TestSharingEffects:
    def test_register_sharing_shrinks_area(self, ctx, solution):
        base = ctx.evaluate(solution).area
        clone = solution.clone()
        r_m = clone.register_of(("m1", 0))
        r_a = clone.register_of(("a1", 0))
        clone.merge_registers(r_m, r_a)
        m = ctx.evaluate(clone)
        assert m.feasible
        assert m.area < base

    def test_fu_sharing_shrinks_area(self, ctx, solution, library):
        base = ctx.evaluate(solution).area
        clone = solution.clone()
        a = clone.instance_of("a1")
        clone.set_cell(a, library.cell("alu1"))
        clone.merge_instances(a, clone.instance_of("s1"))
        m = ctx.evaluate(clone)
        assert m.feasible
        assert m.area < base
