"""Unit tests for the textual DFG writer."""

from repro.dfg import (
    Design,
    GraphBuilder,
    parse_design,
    validate_design,
    write_design,
    write_dfg,
)


class TestWriteDFG:
    def test_behavior_annotation(self):
        b = GraphBuilder("impl_a", behavior="thing")
        x, y = b.inputs("x", "y")
        b.output("o", b.add(x, y))
        text = write_dfg(b.build())
        assert text.splitlines()[0] == "dfg impl_a behavior thing"

    def test_no_behavior_annotation_when_same(self):
        b = GraphBuilder("plain")
        x, y = b.inputs("x", "y")
        b.output("o", b.add(x, y))
        text = write_dfg(b.build())
        assert text.splitlines()[0] == "dfg plain"

    def test_multiport_references(self):
        b = GraphBuilder("m")
        x, y = b.inputs("x", "y")
        h = b.hier("bf", x, y, n_outputs=2, name="h")
        b.output("o0", h[0])
        b.output("o1", h[1])
        text = write_dfg(b.build())
        assert "output o0 h" in text
        assert "output o1 h.1" in text

    def test_const_emitted(self):
        b = GraphBuilder("c")
        x = b.input("x")
        b.output("o", b.add(x, 42))
        text = write_dfg(b.build())
        assert any(line.strip().startswith("const") and "42" in line
                   for line in text.splitlines())

    def test_definitions_precede_uses(self):
        """Statements appear in an order the parser can consume."""
        b = GraphBuilder("order")
        x, y = b.inputs("x", "y")
        m = b.mult(x, y, name="m")
        a = b.add(m, y, name="a")
        b.output("o", a)
        lines = write_dfg(b.build()).splitlines()
        pos = {line.split()[1]: i for i, line in enumerate(lines)
               if len(line.split()) > 1}
        assert pos["m"] < pos["a"]


class TestRoundTrips:
    def test_every_benchmark_roundtrips(self):
        from repro.bench_suite import BENCHMARKS

        for name, builder in BENCHMARKS.items():
            design = builder()
            text = write_design(design)
            reparsed = parse_design(text)
            validate_design(reparsed)
            assert reparsed.top_name == design.top_name
            assert sorted(reparsed.dfg_names()) == sorted(design.dfg_names())
            for dfg_name in design.dfg_names():
                a, b = design.dfg(dfg_name), reparsed.dfg(dfg_name)
                assert len(a.op_nodes()) == len(b.op_nodes())
                assert a.inputs == b.inputs
                assert a.outputs == b.outputs
                assert a.behavior == b.behavior

    def test_roundtrip_preserves_simulation(self, butterfly_design):
        import numpy as np

        from repro.power import simulate_subgraph, white_traces

        reparsed = parse_design(write_design(butterfly_design))
        top_a = butterfly_design.top
        top_b = reparsed.top
        traces = white_traces(top_a, n=16, seed=0)
        streams = [traces[n] for n in top_a.inputs]
        sim_a = simulate_subgraph(butterfly_design, top_a, streams)
        sim_b = simulate_subgraph(reparsed, top_b, streams)
        for out in top_a.outputs:
            sig_a = top_a.in_edges(out)[0].signal
            sig_b = top_b.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_a.stream((), sig_a), sim_b.stream((), sig_b)
            )
