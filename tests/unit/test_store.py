"""Unit tests for the tiered synthesis store (repro.synthesis.store)."""

import sqlite3

import pytest

from repro.synthesis.store import (
    MISSING,
    STORE_SCHEMA_VERSION,
    SynthesisStore,
    digest_content,
)
from repro.telemetry import Telemetry


class TestPointTier:
    def test_get_probes_point_only(self):
        store = SynthesisStore()
        assert store.get("module", "k") is MISSING
        store.put("module", "k", ("content",), 42)
        assert store.get("module", "k") == 42

    def test_stored_none_is_not_missing(self):
        """The resynthesis memo stores None for infeasible budgets."""
        store = SynthesisStore()
        store.put("resynth", "k", ("c",), None)
        assert store.get("resynth", "k") is None
        assert store.get("other", "k") is MISSING

    def test_reset_point_clears_point_not_run(self):
        store = SynthesisStore()
        store.put("module", "k", ("c",), {"v": 1})
        store.reset_point()
        assert store.get("module", "k") is MISSING
        # The run tier still answers through fetch, with a fresh copy.
        value = store.fetch("module", "k", ("c",))
        assert value == {"v": 1}
        assert store.get("module", "k") == {"v": 1}

    def test_point_sizes_respected(self):
        store = SynthesisStore(point_sizes={"module": 2})
        for i in range(4):
            store.put("module", i, ("c", i), i)
        assert len(store.point_tier("module")) == 2
        counters = store.counters()
        assert counters["evictions"]["point.module"] == 2


class TestRunTier:
    def test_fetch_returns_fresh_copies(self):
        """Mutating a fetched value must not poison later fetches."""
        store = SynthesisStore()
        store.put("module", "k", ("c",), {"behaviors": ["a"]})
        store.reset_point()
        first = store.fetch("module", "k", ("c",))
        first["behaviors"].append("b")
        store.reset_point()
        second = store.fetch("module", "k", ("c",))
        assert second == {"behaviors": ["a"]}

    def test_fetch_decode_callback(self):
        store = SynthesisStore()
        store.put("module", "k", ("c",), 10)
        store.reset_point()
        assert store.fetch("module", "k", ("c",), decode=lambda v: v + 1) == 11
        # The decoded value is what lands in the point tier.
        assert store.get("module", "k") == 11

    def test_content_addressing_ignores_point_key(self):
        """Two different point keys with equal content share one blob."""
        store = SynthesisStore()
        store.put("resynth", "key-one", ("same", "content"), "value")
        store.reset_point()
        assert store.fetch("resynth", "other-key", ("same", "content")) == "value"
        assert store.fetch("resynth", "third", ("different",)) is MISSING

    def test_export_and_absorb(self):
        worker = SynthesisStore()
        worker.put("module", "k", ("c",), [1, 2])
        entries = worker.export_fresh()
        assert [(ns, digest) for ns, digest, _blob in entries] == [
            ("module", digest_content(("c",)))
        ]
        assert worker.export_fresh() == []

        parent = SynthesisStore()
        parent.absorb(entries)
        assert parent.fetch("module", "k2", ("c",)) == [1, 2]

    def test_reset_point_drops_pending_exports(self):
        """The serial sweep must not accumulate stale export lists."""
        store = SynthesisStore()
        store.put("module", "k", ("c",), 1)
        store.reset_point()
        assert store.export_fresh() == []


class TestCounters:
    def test_tick_pattern(self):
        store = SynthesisStore()
        store.get("module", "k")  # point miss
        store.fetch("module", "k", ("c",))  # run miss
        store.put("module", "k", ("c",), 1)
        store.get("module", "k")  # point hit
        store.reset_point()
        store.fetch("module", "k", ("c",))  # run hit
        counters = store.counters()
        assert counters["misses"]["point.module"] == 1
        assert counters["misses"]["run.module"] == 1
        assert counters["hits"]["point.module"] == 1
        assert counters["hits"]["run.module"] == 1

    def test_bind_shares_dicts_with_telemetry(self):
        store = SynthesisStore()
        store.get("module", "k")
        telemetry = Telemetry()
        store.bind(telemetry)
        assert telemetry.store_misses == {"point.module": 1}
        store.get("module", "k2")
        assert telemetry.store_misses == {"point.module": 2}


class TestPersistentTier:
    def test_round_trip_across_stores(self, tmp_path):
        first = SynthesisStore(cache_dir=str(tmp_path))
        first.put("schedule", "k", ("c",), (1, 2, 3))
        first.close()

        second = SynthesisStore(cache_dir=str(tmp_path))
        assert second.fetch("schedule", "fresh-key", ("c",)) == (1, 2, 3)
        counters = second.counters()
        assert counters["hits"]["persistent.schedule"] == 1
        second.close()

    def test_no_cache_dir_means_no_persistence(self):
        store = SynthesisStore()
        assert not store.persistent
        assert store.persistent_stats()["total_entries"] == 0

    def test_persistent_flag_off_disables_db(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), persistent=False)
        assert not store.persistent
        store.put("module", "k", ("c",), 1)
        store.close()
        assert not any(tmp_path.iterdir())

    def test_schema_version_mismatch_drops_entries(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        store.put("module", "k", ("c",), 1)
        stats = store.persistent_stats()
        assert stats["total_entries"] == 1
        store.close()

        db = sqlite3.connect(tmp_path / "synthesis_store.sqlite")
        db.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(STORE_SCHEMA_VERSION + 1),),
        )
        db.commit()
        db.close()

        reopened = SynthesisStore(cache_dir=str(tmp_path))
        assert reopened.persistent_stats()["total_entries"] == 0
        assert reopened.fetch("module", "k", ("c",)) is MISSING
        reopened.close()

    def test_concurrent_writers_are_idempotent(self, tmp_path):
        a = SynthesisStore(cache_dir=str(tmp_path))
        b = SynthesisStore(cache_dir=str(tmp_path))
        a.put("module", "k", ("c",), "same")
        b.put("module", "k", ("c",), "same")
        assert a.persistent_stats()["total_entries"] == 1
        a.close()
        b.close()

    def test_stats_and_clear(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        store.put("module", "k1", ("c1",), 1)
        store.put("schedule", "k2", ("c2",), 2)
        stats = store.persistent_stats()
        assert stats["entries"] == {"module": 1, "schedule": 1}
        assert stats["bytes"] > 0
        assert store.clear_persistent() == 2
        assert store.persistent_stats()["total_entries"] == 0
        store.close()

    def test_unusable_cache_dir_degrades_gracefully(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        with pytest.raises(Exception):
            target.joinpath("x").mkdir()  # sanity: path is unusable
        store = SynthesisStore(cache_dir=str(target / "sub"))
        assert not store.persistent
        store.put("module", "k", ("c",), 1)  # still works in memory
        assert store.get("module", "k") == 1
