"""Unit tests for the tiered synthesis store (repro.synthesis.store)."""

import sqlite3

import pytest

from repro.synthesis.store import (
    MISSING,
    STORE_SCHEMA_VERSION,
    SynthesisStore,
    digest_content,
)
from repro.telemetry import Telemetry


class TestPointTier:
    def test_get_probes_point_only(self):
        store = SynthesisStore()
        assert store.get("module", "k") is MISSING
        store.put("module", "k", ("content",), 42)
        assert store.get("module", "k") == 42

    def test_stored_none_is_not_missing(self):
        """The resynthesis memo stores None for infeasible budgets."""
        store = SynthesisStore()
        store.put("resynth", "k", ("c",), None)
        assert store.get("resynth", "k") is None
        assert store.get("other", "k") is MISSING

    def test_reset_point_clears_point_not_run(self):
        store = SynthesisStore()
        store.put("module", "k", ("c",), {"v": 1})
        store.reset_point()
        assert store.get("module", "k") is MISSING
        # The run tier still answers through fetch, with a fresh copy.
        value = store.fetch("module", "k", ("c",))
        assert value == {"v": 1}
        assert store.get("module", "k") == {"v": 1}

    def test_point_sizes_respected(self):
        store = SynthesisStore(point_sizes={"module": 2})
        for i in range(4):
            store.put("module", i, ("c", i), i)
        assert len(store.point_tier("module")) == 2
        counters = store.counters()
        assert counters["evictions"]["point.module"] == 2


class TestRunTier:
    def test_fetch_returns_fresh_copies(self):
        """Mutating a fetched value must not poison later fetches."""
        store = SynthesisStore()
        store.put("module", "k", ("c",), {"behaviors": ["a"]})
        store.reset_point()
        first = store.fetch("module", "k", ("c",))
        first["behaviors"].append("b")
        store.reset_point()
        second = store.fetch("module", "k", ("c",))
        assert second == {"behaviors": ["a"]}

    def test_fetch_decode_callback(self):
        store = SynthesisStore()
        store.put("module", "k", ("c",), 10)
        store.reset_point()
        assert store.fetch("module", "k", ("c",), decode=lambda v: v + 1) == 11
        # The decoded value is what lands in the point tier.
        assert store.get("module", "k") == 11

    def test_content_addressing_ignores_point_key(self):
        """Two different point keys with equal content share one blob."""
        store = SynthesisStore()
        store.put("resynth", "key-one", ("same", "content"), "value")
        store.reset_point()
        assert store.fetch("resynth", "other-key", ("same", "content")) == "value"
        assert store.fetch("resynth", "third", ("different",)) is MISSING

    def test_export_and_absorb(self):
        worker = SynthesisStore()
        worker.put("module", "k", ("c",), [1, 2])
        entries = worker.export_fresh()
        assert [(ns, digest) for ns, digest, _blob in entries] == [
            ("module", digest_content(("c",)))
        ]
        assert worker.export_fresh() == []

        parent = SynthesisStore()
        parent.absorb(entries)
        assert parent.fetch("module", "k2", ("c",)) == [1, 2]

    def test_reset_point_drops_pending_exports(self):
        """The serial sweep must not accumulate stale export lists."""
        store = SynthesisStore()
        store.put("module", "k", ("c",), 1)
        store.reset_point()
        assert store.export_fresh() == []


class TestCounters:
    def test_tick_pattern(self):
        store = SynthesisStore()
        store.get("module", "k")  # point miss
        store.fetch("module", "k", ("c",))  # run miss
        store.put("module", "k", ("c",), 1)
        store.get("module", "k")  # point hit
        store.reset_point()
        store.fetch("module", "k", ("c",))  # run hit
        counters = store.counters()
        assert counters["misses"]["point.module"] == 1
        assert counters["misses"]["run.module"] == 1
        assert counters["hits"]["point.module"] == 1
        assert counters["hits"]["run.module"] == 1

    def test_bind_shares_dicts_with_telemetry(self):
        store = SynthesisStore()
        store.get("module", "k")
        telemetry = Telemetry()
        store.bind(telemetry)
        assert telemetry.store_misses == {"point.module": 1}
        store.get("module", "k2")
        assert telemetry.store_misses == {"point.module": 2}


class TestPersistentTier:
    def test_round_trip_across_stores(self, tmp_path):
        first = SynthesisStore(cache_dir=str(tmp_path))
        first.put("schedule", "k", ("c",), (1, 2, 3))
        first.close()

        second = SynthesisStore(cache_dir=str(tmp_path))
        assert second.fetch("schedule", "fresh-key", ("c",)) == (1, 2, 3)
        counters = second.counters()
        assert counters["hits"]["persistent.schedule"] == 1
        second.close()

    def test_no_cache_dir_means_no_persistence(self):
        store = SynthesisStore()
        assert not store.persistent
        assert store.persistent_stats()["total_entries"] == 0

    def test_persistent_flag_off_disables_db(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), persistent=False)
        assert not store.persistent
        store.put("module", "k", ("c",), 1)
        store.close()
        assert not any(tmp_path.iterdir())

    def test_schema_version_mismatch_drops_entries(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        store.put("module", "k", ("c",), 1)
        stats = store.persistent_stats()
        assert stats["total_entries"] == 1
        store.close()

        db = sqlite3.connect(tmp_path / "synthesis_store.sqlite")
        db.execute(
            "UPDATE meta SET value = ? WHERE key = 'schema_version'",
            (str(STORE_SCHEMA_VERSION + 1),),
        )
        db.commit()
        db.close()

        reopened = SynthesisStore(cache_dir=str(tmp_path))
        assert reopened.persistent_stats()["total_entries"] == 0
        assert reopened.fetch("module", "k", ("c",)) is MISSING
        reopened.close()

    def test_concurrent_writers_are_idempotent(self, tmp_path):
        a = SynthesisStore(cache_dir=str(tmp_path))
        b = SynthesisStore(cache_dir=str(tmp_path))
        a.put("module", "k", ("c",), "same")
        b.put("module", "k", ("c",), "same")
        assert a.persistent_stats()["total_entries"] == 1
        a.close()
        b.close()

    def test_stats_and_clear(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        store.put("module", "k1", ("c1",), 1)
        store.put("schedule", "k2", ("c2",), 2)
        stats = store.persistent_stats()
        assert stats["entries"] == {"module": 1, "schedule": 1}
        assert stats["bytes"] > 0
        assert store.clear_persistent() == 2
        assert store.persistent_stats()["total_entries"] == 0
        store.close()

    def test_unusable_cache_dir_degrades_gracefully(self, tmp_path):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        with pytest.raises(Exception):
            target.joinpath("x").mkdir()  # sanity: path is unusable
        store = SynthesisStore(cache_dir=str(target / "sub"))
        assert not store.persistent
        store.put("module", "k", ("c",), 1)  # still works in memory
        assert store.get("module", "k") == 1


def _corpus_keys(n: int, base_seed: int = 11) -> list[tuple[str, tuple]]:
    """Content keys drawn from a generated-design corpus.

    Fingerprints of seeded random designs are exactly the keyspace the
    store sees under fuzzing/transfer-learning workloads: high-entropy,
    collision-free, unordered.
    """
    from repro.dfg.canonical import design_fingerprint
    from repro.gen import generate_batch

    keys = []
    for gen in generate_batch(base_seed, n):
        fp = design_fingerprint(gen.design, gen.design.top)
        keys.append((fp, ("corpus", fp)))
    assert len({fp for fp, _c in keys}) == n  # sanity: no collisions
    return keys


class TestPersistentEviction:
    def test_prune_keeps_newest_insertions(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        keys = _corpus_keys(8)
        for i, (fp, content) in enumerate(keys):
            store.put("module", fp, content, i)
        assert store.prune_persistent(3) == 5
        assert store.persistent_stats()["total_entries"] == 3
        store.close()

        # Survivors are exactly the three newest insertions, oldest gone.
        reopened = SynthesisStore(cache_dir=str(tmp_path))
        for i, (fp, content) in enumerate(keys):
            value = reopened.fetch("module", fp, content)
            if i < 5:
                assert value is MISSING
            else:
                assert value == i
        reopened.close()

    def test_prune_orders_by_insertion_not_namespace(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        keys = _corpus_keys(6)
        # Interleave namespaces so lexicographic ordering would differ
        # from insertion ordering.
        namespaces = ["schedule", "module", "resynth"] * 2
        for i, ((fp, content), ns) in enumerate(zip(keys, namespaces)):
            store.put(ns, fp, content, i)
        assert store.prune_persistent(2) == 4
        stats = store.persistent_stats()
        assert stats["total_entries"] == 2
        # The two newest inserts were resynth (i=5) and module (i=4).
        assert stats["entries"] == {"module": 1, "resynth": 1}
        counters = store.counters()["evictions"]
        assert counters["persistent.schedule"] == 2
        assert counters["persistent.module"] == 1
        assert counters["persistent.resynth"] == 1
        store.close()

    def test_prune_noop_when_under_bound(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        for fp, content in _corpus_keys(3):
            store.put("module", fp, content, 0)
        assert store.prune_persistent(10) == 0
        assert store.persistent_stats()["total_entries"] == 3
        store.close()

    def test_prune_to_zero_empties_store(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        for fp, content in _corpus_keys(3):
            store.put("module", fp, content, 0)
        assert store.prune_persistent(0) == 3
        assert store.persistent_stats()["total_entries"] == 0
        store.close()

    def test_prune_rejects_negative_bound(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path))
        with pytest.raises(ValueError, match="max_entries"):
            store.prune_persistent(-1)
        store.close()

    def test_prune_without_db_is_zero(self):
        assert SynthesisStore().prune_persistent(0) == 0


_WRITER_SCRIPT = """
import sys
from repro.dfg.canonical import design_fingerprint
from repro.gen import generate_batch
from repro.synthesis.store import SynthesisStore

cache_dir, base_seed, tag = sys.argv[1], int(sys.argv[2]), sys.argv[3]
store = SynthesisStore(cache_dir=cache_dir)
# Writers share the same corpus keyspace: every put races with the
# other process on identical (ns, key) pairs carrying identical bytes.
for gen in generate_batch(base_seed, 40):
    fp = design_fingerprint(gen.design, gen.design.top)
    store.put("module", fp, ("corpus", fp), {"fp": fp, "seed": gen.seed})
store.close()
print(f"{tag} done")
"""


class TestConcurrentWriterProcesses:
    def test_two_processes_one_sqlite_tier(self, tmp_path):
        """Two independent writer processes race on one store.

        Content addressing makes the race benign: both write the same
        bytes for the same keys, so the merged tier must hold exactly
        one intact entry per key.
        """
        import subprocess
        import sys as _sys

        procs = [
            subprocess.Popen(
                [_sys.executable, "-c", _WRITER_SCRIPT,
                 str(tmp_path), "29", tag],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for tag in ("w1", "w2")
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "done" in out

        store = SynthesisStore(cache_dir=str(tmp_path))
        assert store.persistent_stats()["total_entries"] == 40
        for fp, content in _corpus_keys(40, base_seed=29):
            value = store.fetch("module", fp, content)
            assert value == {"fp": fp, "seed": value["seed"]}
        store.close()

class TestSharding:
    """Persistent-tier sharding: layout, auto-detection, pruning."""

    def test_sharded_layout_on_disk(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), shards=4)
        assert store.shards == 4
        names = sorted(p.name for p in tmp_path.glob("*.sqlite"))
        assert names == [f"synthesis_store.shard{i:02d}.sqlite"
                         for i in range(4)]
        store.close()

    def test_round_trip_spreads_across_shards(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), shards=4)
        keys = _corpus_keys(24)
        for i, (fp, content) in enumerate(keys):
            store.put("module", fp, content, i)
        stats = store.persistent_stats()
        assert stats["shards"] == 4
        assert stats["total_entries"] == 24
        store.close()
        # High-entropy digests must not all land in one shard file.
        import sqlite3

        per_shard = []
        for path in sorted(tmp_path.glob("*.sqlite")):
            db = sqlite3.connect(path)
            per_shard.append(
                db.execute("SELECT COUNT(*) FROM store").fetchone()[0]
            )
            db.close()
        assert sum(per_shard) == 24
        assert sum(1 for n in per_shard if n > 0) >= 2

    def test_auto_detection_of_sharded_layout(self, tmp_path):
        writer = SynthesisStore(cache_dir=str(tmp_path), shards=3)
        keys = _corpus_keys(12)
        for i, (fp, content) in enumerate(keys):
            writer.put("module", fp, content, i)
        writer.close()
        # shards=None (the default) must find the 3-shard layout.
        assert SynthesisStore.detect_shards(str(tmp_path)) == 3
        reader = SynthesisStore(cache_dir=str(tmp_path))
        assert reader.shards == 3
        for i, (fp, content) in enumerate(keys):
            assert reader.fetch("module", fp, content) == i
        reader.close()

    def test_detect_shards_defaults_to_one(self, tmp_path):
        assert SynthesisStore.detect_shards(str(tmp_path)) == 1
        store = SynthesisStore(cache_dir=str(tmp_path))  # legacy layout
        store.put("module", "k", ("c",), 1)
        store.close()
        assert SynthesisStore.detect_shards(str(tmp_path)) == 1

    def test_prune_respects_bound_across_shards(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), shards=4)
        keys = _corpus_keys(20)
        for i, (fp, content) in enumerate(keys):
            store.put("module", fp, content, i)
        removed = store.prune_persistent(6)
        kept = store.persistent_stats()["total_entries"]
        assert removed + kept == 20
        assert kept <= 6
        store.close()

    def test_clear_empties_every_shard(self, tmp_path):
        store = SynthesisStore(cache_dir=str(tmp_path), shards=4)
        for fp, content in _corpus_keys(10):
            store.put("module", fp, content, fp)
        assert store.clear_persistent() == 10
        assert store.persistent_stats()["total_entries"] == 0
        store.close()

    def test_shard_count_is_execution_only_for_results(self, tmp_path):
        """The same (key, content) round-trips across shard counts."""
        one = SynthesisStore(cache_dir=str(tmp_path / "s1"), shards=1)
        many = SynthesisStore(cache_dir=str(tmp_path / "s4"), shards=4)
        for fp, content in _corpus_keys(8):
            one.put("module", fp, content, {"fp": fp})
            many.put("module", fp, content, {"fp": fp})
        for fp, content in _corpus_keys(8):
            assert one.fetch("module", fp, content) == \
                many.fetch("module", fp, content)
        one.close()
        many.close()
