"""Unit tests for the operation alphabet and its bit-true semantics."""

import numpy as np
import pytest

from repro.dfg.ops import OP_INFO, Operation, apply_operation, wrap_to_width


class TestOperationLookup:
    def test_from_name_roundtrip(self):
        for op in Operation:
            assert Operation.from_name(op.value) is op

    def test_from_name_unknown(self):
        with pytest.raises(ValueError, match="unknown operation"):
            Operation.from_name("divide")

    def test_every_operation_has_info(self):
        for op in Operation:
            info = OP_INFO[op]
            assert info.arity in (1, 2)

    def test_commutativity_flags(self):
        assert OP_INFO[Operation.ADD].commutative
        assert OP_INFO[Operation.MULT].commutative
        assert not OP_INFO[Operation.SUB].commutative
        assert not OP_INFO[Operation.LSHIFT].commutative


class TestWrapToWidth:
    def test_in_range_unchanged(self):
        values = np.array([0, 1, -1, 32767, -32768])
        np.testing.assert_array_equal(wrap_to_width(values, 16), values)

    def test_overflow_wraps(self):
        values = np.array([32768, -32769, 65536])
        np.testing.assert_array_equal(
            wrap_to_width(values, 16), np.array([-32768, 32767, 0])
        )

    def test_narrow_width(self):
        values = np.array([5, 9, -9])
        np.testing.assert_array_equal(wrap_to_width(values, 4), np.array([5, -7, 7]))


class TestApplyOperation:
    def setup_method(self):
        self.a = np.array([3, -4, 100])
        self.b = np.array([5, 2, -7])

    def test_add(self):
        np.testing.assert_array_equal(
            apply_operation(Operation.ADD, [self.a, self.b], 16),
            np.array([8, -2, 93]),
        )

    def test_sub(self):
        np.testing.assert_array_equal(
            apply_operation(Operation.SUB, [self.a, self.b], 16),
            np.array([-2, -6, 107]),
        )

    def test_mult_wraps(self):
        big = np.array([30000])
        result = apply_operation(Operation.MULT, [big, np.array([3])], 16)
        assert result[0] == wrap_to_width(np.array([90000]), 16)[0]

    def test_comparisons(self):
        lt = apply_operation(Operation.LT, [self.a, self.b], 16)
        gt = apply_operation(Operation.GT, [self.a, self.b], 16)
        np.testing.assert_array_equal(lt, np.array([1, 1, 0]))
        np.testing.assert_array_equal(gt, np.array([0, 0, 1]))

    def test_min_max(self):
        mn = apply_operation(Operation.MIN, [self.a, self.b], 16)
        mx = apply_operation(Operation.MAX, [self.a, self.b], 16)
        np.testing.assert_array_equal(mn, np.array([3, -4, -7]))
        np.testing.assert_array_equal(mx, np.array([5, 2, 100]))

    def test_unary(self):
        neg = apply_operation(Operation.NEG, [self.a], 16)
        np.testing.assert_array_equal(neg, -self.a)
        passed = apply_operation(Operation.PASS, [self.a], 16)
        np.testing.assert_array_equal(passed, self.a)

    def test_shifts(self):
        ls = apply_operation(Operation.LSHIFT, [np.array([3]), np.array([2])], 16)
        rs = apply_operation(Operation.RSHIFT, [np.array([12]), np.array([2])], 16)
        assert ls[0] == 12
        assert rs[0] == 3

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError, match="expects 2 operands"):
            apply_operation(Operation.ADD, [self.a], 16)
