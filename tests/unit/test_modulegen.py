"""Unit tests for module characterization and module merging."""

import pytest

from repro.synthesis import characterize_module, merge_modules
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.modulegen import ModuleInternal


@pytest.fixture
def sub_solution(butterfly_design, library):
    """A synthesized butterfly sub-solution plus its stimulus."""
    import numpy as np

    from repro.power import simulate_subgraph

    sub = butterfly_design.dfg("butterfly")
    rng = np.random.default_rng(0)
    streams = [rng.integers(-1000, 1000, 32) for _ in sub.inputs]
    sim = simulate_subgraph(butterfly_design, sub, streams)
    env = SynthesisEnv(butterfly_design, library, "power")
    sol = initial_solution(env, sub, sim, 10.0, 5.0, 200.0)
    return sol, sim


class TestCharacterize:
    def test_basic_properties(self, sub_solution):
        sol, sim = sub_solution
        module = characterize_module("bf_mod", "butterfly", sol, sim, ())
        assert module.behavior == "butterfly"
        assert module.resynthesizable
        assert isinstance(module.internal, ModuleInternal)
        assert module.cap_internal() > 0

    def test_profile_ports_match_dfg(self, sub_solution):
        sol, sim = sub_solution
        module = characterize_module("bf_mod", "butterfly", sol, sim, ())
        profile = module.profile()
        assert len(profile.input_offsets_ns) == len(sol.dfg.inputs)
        assert len(profile.output_latencies_ns) == len(sol.dfg.outputs)

    def test_profile_reproduces_schedule(self, sub_solution):
        """Quantizing the characterized profile at the characterization
        operating point returns the schedule's cycle counts."""
        sol, sim = sub_solution
        module = characterize_module("bf_mod", "butterfly", sol, sim, ())
        cp = module.profile().at(sol.clk_ns, sol.vdd)
        sched = sol.schedule()
        for port, out_id in enumerate(sol.dfg.outputs):
            (edge,) = sol.dfg.in_edges(out_id)
            assert cp.output_latencies[port] == max(sched.avail[edge.signal], 1)

    def test_netlist_retained(self, sub_solution):
        sol, sim = sub_solution
        module = characterize_module("bf_mod", "butterfly", sol, sim, ())
        assert module.netlist.components()
        assert module.area(sol.library) > 0


class TestMergeModules:
    def test_union_of_behaviors(self, sub_solution):
        sol, sim = sub_solution
        m1 = characterize_module("bf1", "butterfly", sol, sim, ())
        m2 = characterize_module("bf2", "other_beh", sol, sim, ())
        merged = merge_modules(m1, m2)
        assert merged.supports("butterfly")
        assert merged.supports("other_beh")
        assert not merged.resynthesizable

    def test_profiles_preserved(self, sub_solution):
        sol, sim = sub_solution
        m1 = characterize_module("bf1", "butterfly", sol, sim, ())
        m2 = characterize_module("bf2", "other_beh", sol, sim, ())
        merged = merge_modules(m1, m2)
        assert merged.profile("butterfly").output_latencies_ns == (
            m1.profile("butterfly").output_latencies_ns
        )

    def test_merge_area_bounded(self, sub_solution, library):
        sol, sim = sub_solution
        m1 = characterize_module("bf1", "butterfly", sol, sim, ())
        m2 = characterize_module("bf2", "other_beh", sol, sim, ())
        merged = merge_modules(m1, m2)
        # Identical structure: the overlay should cost (almost) nothing
        # beyond one copy.
        assert merged.area(library) <= m1.area(library) + m2.area(library)
        assert merged.area(library) < 1.2 * max(
            m1.area(library), m2.area(library)
        )

    def test_cap_overhead_applied(self, sub_solution):
        sol, sim = sub_solution
        m1 = characterize_module("bf1", "butterfly", sol, sim, ())
        m2 = characterize_module("bf2", "other_beh", sol, sim, ())
        merged = merge_modules(m1, m2)
        assert merged.cap_internal("butterfly") > m1.cap_internal("butterfly")
