"""Unit tests for KL locking and pass bookkeeping details."""

import pytest

from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.improve import PassRecord, _best, improve_solution
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import Candidate, type_a_b_candidates


@pytest.fixture
def setup(flat_design, library, flat_sim):
    env = SynthesisEnv(flat_design, library, "area", SynthesisConfig())
    sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
    return env, sol, flat_sim


class TestBestSelection:
    def test_empty_candidates(self, setup):
        env, sol, sim = setup
        assert _best(env.context(sim), []) is None

    def test_picks_cheapest(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        candidates = type_a_b_candidates(env, sol, sim, frozenset())
        best = _best(ctx, candidates)
        assert best is not None
        for candidate in candidates:
            assert best.cost_after <= ctx.cost(candidate.solution) + 1e-12


class TestLockingWithinPass:
    def test_touched_resources_not_retargeted(self, setup):
        """After locking an instance, A/B generators skip it."""
        env, sol, sim = setup
        first = type_a_b_candidates(env, sol, sim, frozenset())
        assert first
        touched = first[0].touched
        rest = type_a_b_candidates(env, sol, sim, frozenset(touched))
        for candidate in rest:
            assert not (candidate.touched & touched)

    def test_sequence_respects_lock_growth(self, setup):
        """Within one recorded pass, no two moves touch the same id —
        the lock set grows monotonically."""
        env, sol, sim = setup
        history: list[PassRecord] = []
        improve_solution(env, sol, sim, max_passes=1, history=history)
        # We cannot observe touched sets from the record, but the move
        # descriptions name their targets; the same instance must not be
        # re-replaced twice in one pass.
        if history:
            described = [
                m.split(":")[0] for m in history[0].moves if ":" in m
            ]
            replaced = [d for d in described if d.startswith("u")]
            assert len(replaced) == len(set(replaced))


class TestPassCommit:
    def test_best_prefix_applied_solution_matches_cost(self, setup):
        env, sol, sim = setup
        ctx = env.context(sim)
        history: list[PassRecord] = []
        improved = improve_solution(env, sol, sim, history=history)
        final_cost = ctx.cost(improved)
        committed_costs = [
            record.costs[record.committed_prefix - 1]
            for record in history
            if record.committed_prefix
        ]
        if committed_costs:
            assert final_cost == pytest.approx(min(committed_costs), rel=1e-9)

    def test_zero_commit_ends_improvement(self, setup):
        env, sol, sim = setup
        history: list[PassRecord] = []
        improve_solution(env, sol, sim, max_passes=10, history=history)
        # Only the last pass may commit nothing.
        for record in history[:-1]:
            assert record.committed_prefix > 0
