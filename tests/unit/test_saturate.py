"""Unit tests for move-A equivalence saturation.

:mod:`repro.synthesis.saturate` grows a behavior's variant pool with
anisomorphic-but-bit-true implementations found by bounded equality
saturation over a hash-consed expression table.  The tests pin the
load-bearing properties: determinism, bit-trueness against the white-
noise oracle, the saturation bound, hierarchical-node bailout, and
idempotent naming across repeated passes.
"""

import numpy as np

from repro.dfg import Design, GraphBuilder
from repro.dfg.canonical import canonical_fingerprint
from repro.power.simulate import simulate_dfg
from repro.power.traces import white_traces
from repro.synthesis.saturate import saturate_design, saturate_dfg

from tests.designs import make_butterfly_design


def _sub_add_dfg(name: str = "toy"):
    """(a - b) + c — rich in commutations and the SUB lowering."""
    b = GraphBuilder(name)
    a, x, c = b.inputs("a", "b", "c")
    d = b.sub(a, x, name="d")
    s = b.add(d, c, name="s")
    b.output("o", s)
    dfg = b.build()
    dfg.behavior = "toybeh"
    return dfg


def _outputs_equal(base, variant, n=64):
    traces = white_traces(base, n, seed=0)
    sim_a = simulate_dfg(base, traces)
    sim_b = simulate_dfg(variant, traces)
    for out in base.outputs:
        (edge_a,) = base.in_edges(out)
        (edge_b,) = variant.in_edges(out)
        if not np.array_equal(
            sim_a.stream((), edge_a.signal), sim_b.stream((), edge_b.signal)
        ):
            return False
    return True


class TestSaturateDfg:
    def test_finds_anisomorphic_variants(self):
        base = _sub_add_dfg()
        variants = saturate_dfg(base, max_variants=4)
        assert variants
        fps = {canonical_fingerprint(v) for v in variants}
        assert len(fps) == len(variants)
        assert canonical_fingerprint(base) not in fps

    def test_variants_are_bit_true(self):
        base = _sub_add_dfg()
        for variant in saturate_dfg(base, max_variants=4):
            assert _outputs_equal(base, variant)

    def test_deterministic(self):
        a = saturate_dfg(_sub_add_dfg(), max_variants=4)
        b = saturate_dfg(_sub_add_dfg(), max_variants=4)
        assert [v.name for v in a] == [v.name for v in b]
        assert [canonical_fingerprint(v) for v in a] == [
            canonical_fingerprint(v) for v in b
        ]

    def test_respects_max_variants(self):
        assert len(saturate_dfg(_sub_add_dfg(), max_variants=1)) == 1

    def test_zero_rounds_yields_nothing(self):
        # Without a rewrite round every e-class is a singleton, so the
        # only extractable implementation is the base itself.
        assert saturate_dfg(_sub_add_dfg(), rounds=0) == []

    def test_known_fingerprints_are_skipped(self):
        base = _sub_add_dfg()
        first = saturate_dfg(base, max_variants=4)
        known = {canonical_fingerprint(v) for v in first}
        again = saturate_dfg(base, max_variants=4, known=known)
        assert not known & {canonical_fingerprint(v) for v in again}

    def test_name_offset_shifts_suffix(self):
        base = _sub_add_dfg()
        variants = saturate_dfg(base, max_variants=2, name_offset=3)
        assert [v.name for v in variants] == [
            f"{base.name}__sat4",
            f"{base.name}__sat5",
        ][: len(variants)]

    def test_hierarchical_dfg_bails_out(self):
        design = make_butterfly_design()
        # The butterfly top instantiates modules; saturation only
        # handles flat graphs and must decline, not crash.
        assert saturate_dfg(design.top) == []

    def test_preserves_ports_and_behavior(self):
        base = _sub_add_dfg()
        for variant in saturate_dfg(base, max_variants=2):
            assert variant.inputs == base.inputs
            assert variant.outputs == base.outputs
            assert variant.behavior == base.behavior


class TestSaturateDesign:
    def test_grows_non_top_behaviors(self):
        design = make_butterfly_design()
        before = {b: len(design.variants(b)) for b in design.behaviors()}
        added = saturate_design(design)
        assert added > 0
        after = {b: len(design.variants(b)) for b in design.behaviors()}
        top_behavior = design.top.behavior
        assert after[top_behavior] == before[top_behavior]
        assert sum(after.values()) == sum(before.values()) + added
        design.check_hierarchy()

    def test_repeated_saturation_registers_unique_names(self):
        design = make_butterfly_design()
        saturate_design(design)
        # A second pass must not collide with __sat names already taken
        # (add_dfg raises on duplicates) and must not re-register an
        # existing implementation.
        saturate_design(design, max_variants=4)
        names = [v.name for b in design.behaviors() for v in design.variants(b)]
        assert len(names) == len(set(names))
        fps = [
            canonical_fingerprint(v)
            for b in design.behaviors()
            for v in design.variants(b)
        ]
        assert len(fps) == len(set(fps))

    def test_variants_share_behavior_of_base(self):
        design = make_butterfly_design()
        saturate_design(design)
        for behavior in design.behaviors():
            for variant in design.variants(behavior):
                assert variant.behavior == behavior
