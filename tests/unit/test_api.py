"""Unit tests for the top-level synthesize()/voltage_scale() API."""

import pytest

from repro.errors import SynthesisError
from repro.synthesis import (
    SynthesisConfig,
    synthesize,
    synthesize_flat,
    voltage_scale,
)


QUICK = SynthesisConfig(max_moves=5, max_passes=2, n_clocks=1)


@pytest.fixture
def results(flat_design):
    area = synthesize(flat_design, laxity_factor=2.0, objective="area", config=QUICK)
    power = synthesize(flat_design, laxity_factor=2.0, objective="power", config=QUICK)
    return area, power


class TestSynthesize:
    def test_constraint_argument_validation(self, flat_design):
        with pytest.raises(SynthesisError, match="exactly one"):
            synthesize(flat_design, objective="area", config=QUICK)
        with pytest.raises(SynthesisError, match="exactly one"):
            synthesize(
                flat_design, sampling_ns=100.0, laxity_factor=2.0, config=QUICK
            )

    def test_results_feasible(self, results):
        for result in results:
            assert result.metrics.feasible
            sched = result.solution.schedule()
            assert sched.length * result.clk_ns <= result.sampling_ns + 1e-6

    def test_objectives_ordered(self, results):
        area_opt, power_opt = results
        assert area_opt.area <= power_opt.area + 1e-9
        assert power_opt.power <= area_opt.power + 1e-9

    def test_area_mode_stays_at_5v(self, results):
        area_opt, _ = results
        assert area_opt.vdd == 5.0

    def test_impossible_throughput_raises(self, flat_design):
        with pytest.raises(SynthesisError, match="unachievable"):
            synthesize(flat_design, sampling_ns=1.0, objective="area", config=QUICK)

    def test_netlist_and_controller_available(self, results):
        area_opt, _ = results
        netlist = area_opt.netlist()
        fsm = area_opt.controller()
        assert netlist.components()
        assert fsm.n_states >= 1

    def test_history_populated(self, results):
        area_opt, _ = results
        assert area_opt.history
        assert all(isinstance(k, tuple) for k in area_opt.history)


class TestSynthesizeFlat:
    def test_hier_design_flattened(self, butterfly_design):
        result = synthesize_flat(
            butterfly_design, laxity_factor=2.0, objective="area", config=QUICK
        )
        assert result.flattened
        assert result.design.top.hier_nodes() == []
        assert result.metrics.feasible

    def test_hier_vs_flat_both_work(self, butterfly_design):
        hier = synthesize(
            butterfly_design, laxity_factor=2.0, objective="area", config=QUICK
        )
        flat = synthesize_flat(
            butterfly_design, laxity_factor=2.0, objective="area", config=QUICK
        )
        assert hier.metrics.feasible and flat.metrics.feasible


class TestVoltageScale:
    def test_scaling_never_increases_power(self, results):
        area_opt, _ = results
        scaled = voltage_scale(area_opt)
        assert scaled.power <= area_opt.power + 1e-9
        assert scaled.vdd <= area_opt.vdd

    def test_scaled_design_still_meets_throughput(self, results):
        area_opt, _ = results
        scaled = voltage_scale(area_opt, continuous=True)
        length = scaled.solution.schedule().length
        assert length * scaled.clk_ns <= scaled.sampling_ns + 1e-6

    def test_continuous_at_least_as_good_as_discrete(self, results):
        area_opt, _ = results
        discrete = voltage_scale(area_opt)
        continuous = voltage_scale(area_opt, continuous=True)
        assert continuous.power <= discrete.power + 1e-9

    def test_architecture_unchanged(self, results):
        area_opt, _ = results
        scaled = voltage_scale(area_opt, continuous=True)
        assert scaled.area == pytest.approx(area_opt.area)
        assert scaled.solution.schedule().length == (
            area_opt.solution.schedule().length
        )

    def test_candidates_deduplicated(self, results):
        """Regression: a continuous candidate landing on a discrete
        library voltage used to be evaluated twice."""
        from repro.synthesis.api import _scale_candidates

        area_opt, _ = results
        candidates = _scale_candidates(area_opt, (3.3, 3.3, 2.4), True)
        assert len(candidates) == len(set(candidates))
        for a, b in [(a, b) for a in candidates for b in candidates if a is not b]:
            assert abs(a - b) >= 1e-9
        assert all(v < area_opt.vdd for v in candidates)

    def test_scaling_time_accounted(self, results):
        """Regression: the time spent scaling used to vanish — the scaled
        result reported only the original synthesis elapsed_s."""
        area_opt, _ = results
        scaled = voltage_scale(area_opt, continuous=True)
        if scaled is not area_opt:  # scaling won: elapsed must grow
            assert scaled.elapsed_s > area_opt.elapsed_s

    def test_no_improvement_returns_original(self, results):
        _, power_opt = results
        scaled = voltage_scale(power_opt, voltages=(power_opt.vdd,))
        assert scaled is power_opt

    def test_telemetry_carried_through(self, results):
        area_opt, _ = results
        scaled = voltage_scale(area_opt, continuous=True)
        assert scaled.telemetry is area_opt.telemetry


class TestTelemetryOnResult:
    def test_counters_populated(self, results):
        area_opt, _ = results
        t = area_opt.telemetry
        assert t.evaluations > 0
        assert t.evaluations == t.cache_hits + t.cache_misses
        assert t.points_explored >= 1
        assert sum(t.moves_tried.values()) > 0
        assert set(t.stage_s) >= {"simulate", "initial", "improve", "sweep"}
        assert all(s >= 0.0 for s in t.stage_s.values())

    def test_committed_subset_of_tried(self, results):
        area_opt, _ = results
        t = area_opt.telemetry
        for family, n in t.moves_committed.items():
            assert n <= t.moves_tried.get(family, 0)
