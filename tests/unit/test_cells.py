"""Unit tests for library cells and their characterization quantities."""

import pytest

from repro.dfg import Operation
from repro.library import (
    CellKind,
    IDLE_FRACTION,
    MUX_CELL,
    REGISTER_CELL,
    STANDARD_CELLS,
    standard_cells,
    table1_rows,
)


def cell(name: str):
    return next(c for c in STANDARD_CELLS if c.name == name)


class TestCellProperties:
    def test_supports(self):
        assert cell("add1").supports(Operation.ADD)
        assert not cell("add1").supports(Operation.MULT)
        assert cell("alu1").supports(Operation.ADD)
        assert cell("alu1").supports(Operation.SUB)

    def test_chain_lengths(self):
        assert cell("chained_add2").chain_length == 2
        assert cell("chained_add3").chain_length == 3
        assert cell("add1").chain_length == 1

    def test_register_and_mux_kinds(self):
        assert REGISTER_CELL.kind == CellKind.REGISTER
        assert MUX_CELL.kind == CellKind.MUX

    def test_standard_cells_fresh_list(self):
        cells = standard_cells()
        cells.clear()
        assert standard_cells()  # not aliased


class TestDelayCycles:
    def test_table1_operating_point(self):
        """At 10 ns / 5 V the default cells reproduce Table 1 exactly."""
        rows = dict((name, (area, cycles)) for name, area, cycles in table1_rows())
        assert rows["add1"] == (30.0, 1)
        assert rows["add2"] == (20.0, 2)
        assert rows["chained_add2"] == (60.0, 1)
        assert rows["chained_add3"] == (90.0, 1)
        assert rows["mult1"] == (150.0, 3)
        assert rows["mult2"] == (100.0, 5)
        assert rows["reg1"] == (10.0, 0)

    def test_lower_vdd_slower(self):
        c = cell("mult1")
        assert c.delay_cycles(10.0, 3.3) > c.delay_cycles(10.0, 5.0)

    def test_shorter_clock_more_cycles(self):
        c = cell("mult1")
        assert c.delay_cycles(5.0, 5.0) > c.delay_cycles(10.0, 5.0)

    def test_minimum_one_cycle(self):
        c = cell("cmp1")
        assert c.delay_cycles(100.0, 5.0) == 1

    def test_bad_clock_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            cell("add1").delay_cycles(0.0, 5.0)


class TestEnergy:
    def test_quadratic_in_vdd(self):
        c = cell("mult1")
        e5 = c.energy_per_op(5.0, 0.5)
        e25 = c.energy_per_op(2.5, 0.5)
        assert e5 / e25 == pytest.approx(4.0)

    def test_monotone_in_activity(self):
        c = cell("add1")
        assert c.energy_per_op(5.0, 0.8) > c.energy_per_op(5.0, 0.2)

    def test_idle_floor(self):
        c = cell("add1")
        assert c.energy_per_op(5.0, 0.0) == pytest.approx(
            c.cap * IDLE_FRACTION * 25.0
        )

    def test_activity_clamped(self):
        c = cell("add1")
        assert c.energy_per_op(5.0, 2.0) == c.energy_per_op(5.0, 1.0)
        assert c.energy_per_op(5.0, -1.0) == c.energy_per_op(5.0, 0.0)

    def test_mult2_lower_power_than_mult1(self):
        """The paper's library fact: mult2 consumes much less than mult1."""
        assert cell("mult2").cap < cell("mult1").cap
        assert cell("mult2").delay_ns > cell("mult1").delay_ns
        assert cell("mult2").area < cell("mult1").area
