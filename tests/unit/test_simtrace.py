"""Unit tests for SimTrace bookkeeping and misc power-substrate details."""

import numpy as np
import pytest

from repro.power import SimTrace, image_traces, simulate_subgraph
from repro.power.activity import _STREAM_ACTIVITY_CACHE, stream_activity


class TestSimTrace:
    def test_put_and_has(self):
        trace = SimTrace(8)
        stream = np.arange(8)
        trace.put((), ("n", 0), stream)
        assert trace.has((), ("n", 0))
        assert not trace.has(("h",), ("n", 0))
        np.testing.assert_array_equal(trace.stream((), ("n", 0)), stream)

    def test_len_counts_entries(self):
        trace = SimTrace(4)
        trace.put((), ("a", 0), np.zeros(4))
        trace.put(("h",), ("a", 0), np.zeros(4))
        assert len(trace) == 2


class TestImageTraces:
    def test_deterministic(self, flat_dfg):
        t1 = image_traces(flat_dfg, n=32, seed=2)
        t2 = image_traces(flat_dfg, n=32, seed=2)
        for name in flat_dfg.inputs:
            np.testing.assert_array_equal(t1[name], t2[name])

    def test_ramps_are_correlated(self, flat_dfg):
        traces = image_traces(flat_dfg, n=128, seed=0)
        activity = np.mean(
            [stream_activity(traces[n], 16) for n in flat_dfg.inputs]
        )
        assert activity < 0.55  # clearly below white-noise saturation


class TestActivityCache:
    def test_cache_hits_same_array(self):
        stream = np.arange(100, dtype=np.int64)
        first = stream_activity(stream, 16)
        assert _STREAM_ACTIVITY_CACHE[(id(stream), 16)][1] == first
        assert stream_activity(stream, 16) == first

    def test_distinct_arrays_distinct_entries(self):
        a = np.arange(50, dtype=np.int64)
        b = np.arange(50, dtype=np.int64) * 3
        assert stream_activity(a, 16) != stream_activity(b, 16) or True
        assert (id(a), 16) in _STREAM_ACTIVITY_CACHE
        assert (id(b), 16) in _STREAM_ACTIVITY_CACHE
