"""Unit tests for the synthesized characterization database."""

import pytest

from repro.library import SUPPLY_VOLTAGES, build_characterization
from repro.library.characterize import _VARIATION


class TestCharacterization:
    def test_deterministic(self):
        t1 = build_characterization()
        t2 = build_characterization()
        for r1, r2 in zip(sorted(t1.rows(), key=lambda r: (r.cell, r.vdd)),
                          sorted(t2.rows(), key=lambda r: (r.cell, r.vdd))):
            assert r1 == r2

    def test_all_cells_all_voltages(self):
        from repro.library import STANDARD_CELLS

        table = build_characterization()
        # Every functional cell + register + mux, at each supply.
        assert len(table) == (len(STANDARD_CELLS) + 2) * len(SUPPLY_VOLTAGES)

    def test_variation_bounded(self):
        table = build_characterization()
        row = table.row("add1", 5.0)
        assert abs(row.area - 30.0) <= 30.0 * _VARIATION

    def test_delay_scales_with_voltage(self):
        table = build_characterization()
        d5 = table.row("mult1", 5.0).delay_ns
        d24 = table.row("mult1", 2.4).delay_ns
        assert d24 > 2.0 * d5

    def test_energy_scales_quadratically(self):
        table = build_characterization()
        e5 = table.row("mult1", 5.0).energy_full_activity
        e24 = table.row("mult1", 2.4).energy_full_activity
        assert e24 / e5 == pytest.approx((2.4 / 5.0) ** 2)

    def test_unknown_lookup(self):
        table = build_characterization()
        with pytest.raises(KeyError, match="no characterization"):
            table.row("ghost", 5.0)

    def test_cells_listing(self):
        table = build_characterization()
        assert "mult2" in table.cells()
