"""Unit tests for the cycle-accurate RTL interpreter."""

import pytest

from repro.rtl.interpreter import InterpreterFault
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.verify.plan import build_exec_plan, build_interpreter


@pytest.fixture
def flat_solution(flat_design, library, flat_sim):
    env = SynthesisEnv(flat_design, library, "area")
    return initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)


class TestRunSample:
    def test_matches_dfg_semantics(self, flat_design, flat_solution):
        interp = build_interpreter(flat_design, flat_solution)
        # o0 = x*y + z, o1 = x - z
        outcome = interp.run_sample([3, 4, 5])
        assert outcome.outputs == [17, -2]

    def test_fsm_restarts_between_samples(self, flat_design, flat_solution):
        interp = build_interpreter(flat_design, flat_solution)
        outcomes = interp.run([[1, 1, 1], [2, 2, 2]])
        assert outcomes[0].outputs == [2, 0]
        assert outcomes[1].outputs == [6, 0]

    def test_logs_register_loads(self, flat_design, flat_solution):
        interp = build_interpreter(flat_design, flat_solution)
        outcome = interp.run_sample([3, 4, 5])
        # Primary inputs are loaded in state 0.
        state0 = {(reg, val) for cyc, reg, val in outcome.loads if cyc == 0}
        assert {val for _reg, val in state0} >= {3, 4, 5}
        assert outcome.n_cycles >= interp.controller.n_states

    def test_runs_hierarchical_modules(self, butterfly_design, library, butterfly_sim):
        env = SynthesisEnv(butterfly_design, library, "area")
        solution = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        interp = build_interpreter(butterfly_design, solution)
        # out = (x+y)(z+w) + (x-y)(z-w)
        outcome = interp.run_sample([5, 3, 4, 2])
        assert outcome.outputs == [8 * 6 + 2 * 2]


class TestFaults:
    def test_wrong_operation_on_start_faults(self, flat_design, flat_solution):
        interp = build_interpreter(flat_design, flat_solution)
        for execs in interp.plan.unit_execs.values():
            if execs:
                object.__setattr__(execs[0], "op_label", "bogus")
                break
        with pytest.raises(InterpreterFault):
            interp.run_sample([1, 2, 3])

    def test_missing_mux_select_faults(self, flat_design, library, flat_sim):
        from repro.synthesis.moves import sharing_candidates

        env = SynthesisEnv(flat_design, library, "area")
        solution = initial_solution(
            env, flat_design.top, flat_sim, 10.0, 5.0, 500.0
        )
        shared = [
            c.solution
            for c in sharing_candidates(env, solution, flat_sim, frozenset())
            if not c.solution.register_conflicts()
        ]
        if not shared:
            pytest.skip("no conflict-free sharing candidate on this design")
        interp = build_interpreter(flat_design, shared[0])
        # Shared units have multi-source operand ports; dropping every
        # mux select makes those reads ambiguous.
        stripped = False
        for s in range(interp.controller.n_states):
            state = interp.controller.state(s)
            if state.selects:
                multi = [
                    sel
                    for sel in state.selects
                    if len(interp.netlist.sources_of(sel.dst, sel.dst_port)) > 1
                ]
                if multi:
                    for sel in multi:
                        state.selects.remove(sel)
                    stripped = True
        if not stripped:
            pytest.skip("shared solution has no multi-source operand ports")
        with pytest.raises(InterpreterFault) as exc_info:
            interp.run_sample([1, 2, 3])
        assert exc_info.value.cycle >= 0

    def test_lost_start_faults_downstream(self, flat_design, flat_solution):
        interp = build_interpreter(flat_design, flat_solution)
        for s in range(interp.controller.n_states):
            state = interp.controller.state(s)
            if state.starts:
                state.starts.pop()
                break
        with pytest.raises(InterpreterFault):
            interp.run_sample([1, 2, 3])


class TestExecPlan:
    def test_plan_covers_all_instances(self, flat_design, flat_solution):
        plan = build_exec_plan(flat_design, flat_solution)
        assert set(plan.unit_execs) == set(flat_solution.instances)
        n_tasks = sum(len(v) for v in flat_solution.executions.values())
        assert sum(len(v) for v in plan.unit_execs.values()) == n_tasks

    def test_cell_compute_is_bit_true(self, flat_design, flat_solution):
        plan = build_exec_plan(flat_design, flat_solution)
        dfg = flat_solution.dfg
        for execs in plan.unit_execs.values():
            for sem in execs:
                if sem.op_label == "mult":
                    width = dfg.node("m1").width
                    assert sem.compute(0, {0: 3, 1: 4}) == 12
                    # Two's-complement wrap at the node width.
                    big = 1 << (width - 1)
                    assert sem.compute(0, {0: big, 1: 1}) == -big
