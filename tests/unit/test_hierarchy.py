"""Unit tests for hierarchical designs (Design)."""

import pytest

from repro.dfg import DFG, Design, GraphBuilder, Operation
from repro.errors import DFGError


def trivial_dfg(name: str, behavior: str | None = None) -> DFG:
    b = GraphBuilder(name, behavior=behavior)
    x, y = b.inputs("x", "y")
    b.output("o", b.add(x, y))
    return b.build()


class TestDesignBasics:
    def test_top_resolution(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("main"), top=True)
        assert d.top.name == "main"
        assert d.top_name == "main"

    def test_no_top_raises(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("main"))
        with pytest.raises(DFGError, match="no top"):
            _ = d.top

    def test_duplicate_dfg_rejected(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("main"))
        with pytest.raises(DFGError, match="duplicate DFG"):
            d.add_dfg(trivial_dfg("main"))

    def test_set_top_unknown(self):
        d = Design("d")
        with pytest.raises(DFGError, match="unknown DFG"):
            d.set_top("missing")


class TestVariants:
    def test_variants_grouped_by_behavior(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("v1", behavior="sum"))
        d.add_dfg(trivial_dfg("v2", behavior="sum"))
        assert {v.name for v in d.variants("sum")} == {"v1", "v2"}
        assert d.default_variant("sum").name == "v1"

    def test_unknown_behavior(self):
        d = Design("d")
        with pytest.raises(DFGError, match="no DFG implements"):
            d.variants("ghost")

    def test_has_behavior(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("v1", behavior="sum"))
        assert d.has_behavior("sum")
        assert not d.has_behavior("other")


class TestHierarchyChecks:
    def test_port_mismatch_detected(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("sub", behavior="sum"))  # 2 inputs
        top = GraphBuilder("top")
        x = top.input("x")
        top.output("o", top.hier("sum", x, name="h"))  # only 1 input
        d.add_dfg(top.build(), top=True)
        with pytest.raises(DFGError, match="inputs"):
            d.check_hierarchy()

    def test_recursive_behavior_detected(self):
        d = Design("d")
        b = GraphBuilder("rec", behavior="loop")
        x, y = b.inputs("x", "y")
        b.output("o", b.hier("loop", x, y, name="h"))
        d.add_dfg(b.build(), top=True)
        with pytest.raises(DFGError, match="recursive"):
            d.check_hierarchy()

    def test_clean_hierarchy_passes(self, butterfly_design):
        butterfly_design.check_hierarchy()


class TestMetrics:
    def test_depth(self, butterfly_design):
        assert butterfly_design.depth() == 2

    def test_depth_three_levels(self):
        d = Design("d")
        d.add_dfg(trivial_dfg("leaf", behavior="leaf"))
        mid = GraphBuilder("mid", behavior="mid")
        x, y = mid.inputs("x", "y")
        mid.output("o", mid.hier("leaf", x, y, name="h"))
        d.add_dfg(mid.build())
        top = GraphBuilder("top")
        x, y = top.inputs("x", "y")
        top.output("o", top.hier("mid", x, y, name="h"))
        d.add_dfg(top.build(), top=True)
        assert d.depth() == 3

    def test_total_operations(self, butterfly_design):
        # 2 butterflies x 2 ops + 3 top ops
        assert butterfly_design.total_operations() == 7
