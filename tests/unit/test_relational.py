"""Unit tests for the relational discovery engine and lazy candidates.

The contract under test (see :mod:`repro.synthesis.relational`): for
every family the engine takes over, the emitted candidate *multiset*
equals the legacy generators' output, each lazy descriptor's
precomputed fingerprint equals the fingerprint of the solution its
``build`` recipe produces, and no clone is built until the candidate's
``solution`` is first accessed.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.errors import SynthesisError
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    Candidate,
    candidate_order_key,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from repro.synthesis.relational import OP_BIT, RelationalView, op_mask

NONE_LOCKED = frozenset()


def _env_for(circuit: str, config: SynthesisConfig | None = None):
    design = get_benchmark(circuit)
    traces = speech_traces(design.top, n=32, seed=1)
    sim = simulate_subgraph(
        design, design.top, [traces[n] for n in design.top.inputs]
    )
    env = SynthesisEnv(design, default_library(), "power", config or SynthesisConfig())
    solution = initial_solution(env, design.top, sim, 10.0, 5.0, 2000.0)
    return env, solution, sim


def _families(env, solution, sim, view):
    return (
        list(type_a_b_candidates(env, solution, sim, NONE_LOCKED, view=view))
        + sharing_candidates(env, solution, sim, NONE_LOCKED, view=view)
        + splitting_candidates(env, solution, sim, NONE_LOCKED, view=view)
    )


class TestOpMask:
    def test_bits_are_distinct(self):
        assert len(set(OP_BIT.values())) == len(OP_BIT)

    def test_mask_folds_bits(self):
        ops = list(OP_BIT)[:3]
        mask = op_mask(ops)
        for op in ops:
            assert mask & OP_BIT[op]

    def test_subset_predicate(self):
        ops = list(OP_BIT)
        small = op_mask(ops[:2])
        big = op_mask(ops[:4])
        assert small & ~big == 0  # subset fits
        assert big & ~small != 0  # superset does not


class TestEquivalence:
    """Relational and legacy engines discover the same multiset."""

    @pytest.mark.parametrize("circuit", ["paulin", "test1"])
    def test_same_multiset(self, circuit):
        env, solution, sim = _env_for(circuit)
        view = RelationalView(env, solution, NONE_LOCKED)
        relational = _families(env, solution, sim, view)
        legacy = _families(env, solution, sim, None)
        assert sorted(candidate_order_key(c) for c in relational) == sorted(
            candidate_order_key(c) for c in legacy
        )

    def test_descriptor_fingerprint_matches_materialized(self):
        env, solution, sim = _env_for("paulin")
        view = RelationalView(env, solution, NONE_LOCKED)
        lazy = [c for c in _families(env, solution, sim, view) if not c.is_materialized]
        assert lazy, "expected lazy descriptors from the relational engine"
        seen_kinds = set()
        for cand in lazy:
            seen_kinds.add(cand.kind)
            assert cand.fingerprint_key() == cand.solution.fingerprint_key(), (
                f"{cand.kind}: descriptor fingerprint diverges from the "
                "materialized clone"
            )
        assert {"A-cell", "C-share-fu", "C-share-reg"} <= seen_kinds

    def test_locked_resources_respected(self):
        env, solution, sim = _env_for("paulin")
        locked = frozenset(list(solution.instances)[:2] + list(solution.reg_signals)[:2])
        view = RelationalView(env, solution, locked)
        relational = (
            list(type_a_b_candidates(env, solution, sim, locked, view=view))
            + sharing_candidates(env, solution, sim, locked, view=view)
            + splitting_candidates(env, solution, sim, locked, view=view)
        )
        legacy = (
            list(type_a_b_candidates(env, solution, sim, locked, view=None))
            + sharing_candidates(env, solution, sim, locked, view=None)
            + splitting_candidates(env, solution, sim, locked, view=None)
        )
        assert sorted(candidate_order_key(c) for c in relational) == sorted(
            candidate_order_key(c) for c in legacy
        )
        for cand in relational:
            assert not (cand.touched & locked)


class TestLazyCandidate:
    def test_needs_exactly_one_construction_mode(self):
        with pytest.raises(SynthesisError):
            Candidate(kind="A-cell", description="neither")
        env, solution, _sim = _env_for("paulin")
        with pytest.raises(SynthesisError):
            Candidate(
                kind="A-cell",
                description="both",
                solution=solution,
                build=lambda: solution,
            )

    def test_materializes_once_and_counts(self):
        fired: list[str] = []
        env, solution, _sim = _env_for("paulin")
        cand = Candidate(
            kind="A-cell",
            description="lazy",
            build=solution.clone,
            fingerprint=solution.fingerprint_key(),
            on_materialize=fired.append,
        )
        assert not cand.is_materialized
        first = cand.solution
        second = cand.solution
        assert first is second
        assert cand.is_materialized
        assert fired == ["A-cell"]

    def test_fingerprint_does_not_materialize(self):
        env, solution, _sim = _env_for("paulin")
        cand = Candidate(
            kind="A-cell",
            description="lazy",
            build=solution.clone,
            fingerprint=solution.fingerprint_key(),
        )
        cand.fingerprint_key()
        assert not cand.is_materialized

    def test_epoch_guard_rejects_stale_materialization(self):
        env, solution, sim = _env_for("paulin")
        view = RelationalView(env, solution, NONE_LOCKED)
        cands = view.fu_sharing()
        assert cands
        stale = cands[0]
        solution.invalidate()  # bumps the mutation epoch
        with pytest.raises(SynthesisError):
            stale.solution


class TestRegisterSharingWindow:
    """Full-pair discovery, not the old fixed 4-successor window."""

    def test_pairs_beyond_window(self):
        env, solution, sim = _env_for("paulin")
        view = RelationalView(env, solution, NONE_LOCKED)
        view._ensure_registers()
        rows = view._conn.execute(
            "SELECT a.pos, b.pos FROM reg a JOIN reg b ON b.pos > a.pos "
            "WHERE a.ok = 1 AND b.ok = 1 AND NOT EXISTS ("
            " SELECT 1 FROM ovl o WHERE o.ra = a.pos AND o.rb = b.pos)"
        ).fetchall()
        assert rows, "paulin should offer disjoint register pairs"
        assert any(pb - pa > 4 for pa, pb in rows), (
            "expected at least one shareable pair farther than the old "
            "4-successor window in left-edge order"
        )

    def test_legacy_engine_matches_on_distant_pairs(self):
        env, solution, sim = _env_for("paulin")
        view = RelationalView(env, solution, NONE_LOCKED)
        rel = {c.description for c in view.register_sharing()}
        leg = {
            c.description
            for c in sharing_candidates(env, solution, sim, NONE_LOCKED, view=None)
            if c.kind == "C-share-reg"
        }
        assert rel == leg


class TestFamilyApportionment:
    """Per-family caps keep late families from being starved."""

    def test_tiny_budget_still_reaches_registers(self):
        config = SynthesisConfig(max_share_pairs=2)
        env, solution, sim = _env_for("paulin", config)
        for view in (RelationalView(env, solution, NONE_LOCKED), None):
            cands = sharing_candidates(env, solution, sim, NONE_LOCKED, view=view)
            kinds = {c.kind for c in cands}
            n_fu = sum(1 for c in cands if c.kind == "C-share-fu")
            assert n_fu <= 2
            assert "C-share-reg" in kinds, (
                "register sharing starved by the FU-pair budget"
            )

    def test_caps_match_across_engines(self):
        config = SynthesisConfig(max_share_pairs=3, max_split_candidates=3)
        env, solution, sim = _env_for("paulin", config)
        view = RelationalView(env, solution, NONE_LOCKED)
        rel = sharing_candidates(
            env, solution, sim, NONE_LOCKED, view=view
        ) + splitting_candidates(env, solution, sim, NONE_LOCKED, view=view)
        leg = sharing_candidates(
            env, solution, sim, NONE_LOCKED, view=None
        ) + splitting_candidates(env, solution, sim, NONE_LOCKED, view=None)
        assert sorted(candidate_order_key(c) for c in rel) == sorted(
            candidate_order_key(c) for c in leg
        )


class TestTableCache:
    """Connection-level table reuse across views of one solution."""

    def test_same_solution_shares_tables(self):
        env, solution, sim = _env_for("paulin")
        v1 = RelationalView(env, solution, NONE_LOCKED)
        v1._ensure_simple()
        v2 = RelationalView(env, solution, NONE_LOCKED)
        state = v2._state()
        assert "inst" in state["built"]

    def test_changed_solution_invalidates(self):
        env, solution, sim = _env_for("paulin")
        v1 = RelationalView(env, solution, NONE_LOCKED)
        v1._ensure_simple()
        clone = solution.clone()
        inst_id = next(iter(clone.instances))
        cell = next(
            c
            for c in env.library.cells()
            if c.name != clone.instances[inst_id].cell.name
            and clone.instances[inst_id].cell.ops <= c.ops
            and c.chain_length >= clone.instances[inst_id].cell.chain_length
        )
        clone.set_cell(inst_id, cell)
        v2 = RelationalView(env, clone, NONE_LOCKED)
        assert "inst" not in v2._state()["built"]

    def test_locked_set_is_part_of_identity(self):
        env, solution, sim = _env_for("paulin")
        v1 = RelationalView(env, solution, NONE_LOCKED)
        v1._ensure_simple()
        locked = frozenset([next(iter(solution.instances))])
        v2 = RelationalView(env, solution, locked)
        assert "inst" not in v2._state()["built"]
