"""Unit tests for the switched-capacitance power estimator."""

import numpy as np
import pytest

from repro.library import MUX_CELL, REGISTER_CELL, STANDARD_CELLS
from repro.power import (
    FUUsage,
    InterconnectUsage,
    MuxUsage,
    RegisterUsage,
    estimate_power,
)
from repro.power.estimator import REGISTER_CLOCK_FRACTION


def mult_cell():
    return next(c for c in STANDARD_CELLS if c.name == "mult1")


def streams(n=16, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(-1000, 1000, size=n)


class TestFUUsage:
    def test_energy_scales_with_executions(self):
        one = FUUsage(mult_cell(), [[streams(), streams(seed=1)]], width=16)
        two = FUUsage(
            mult_cell(),
            [[streams(), streams(seed=1)], [streams(seed=2), streams(seed=3)]],
            width=16,
        )
        assert two.energy_per_sample(5.0) > one.energy_per_sample(5.0)

    def test_no_executions_zero(self):
        usage = FUUsage(mult_cell(), [], width=16)
        assert usage.energy_per_sample(5.0) == 0.0

    def test_vdd_quadratic(self):
        usage = FUUsage(mult_cell(), [[streams(), streams(seed=1)]], width=16)
        assert usage.energy_per_sample(5.0) / usage.energy_per_sample(2.5) == (
            pytest.approx(4.0)
        )


class TestRegisterUsage:
    def test_clock_energy_grows_with_cycles(self):
        short = RegisterUsage(REGISTER_CELL, [streams()], 16, clocked_cycles=10)
        long = RegisterUsage(REGISTER_CELL, [streams()], 16, clocked_cycles=50)
        assert long.energy_per_sample(5.0) > short.energy_per_sample(5.0)

    def test_clock_fraction_value(self):
        silent = RegisterUsage(
            REGISTER_CELL, [np.full(8, 3)], 16, clocked_cycles=20
        )
        expected_clock = (
            REGISTER_CLOCK_FRACTION * 20 * REGISTER_CELL.energy_per_op(5.0, 0.0)
        )
        expected_write = REGISTER_CELL.energy_per_op(5.0, 0.0)
        assert silent.energy_per_sample(5.0) == pytest.approx(
            expected_clock + expected_write
        )

    def test_empty_register_still_clocks(self):
        """A register nobody writes still burns clock-tree energy every
        cycle — the write term is zero, the idle clock term is not."""
        usage = RegisterUsage(REGISTER_CELL, [], 16, clocked_cycles=100)
        idle = usage.energy_per_sample(5.0)
        assert idle > 0.0
        # Exactly the clock term: the same usage with no clocked cycles
        # costs nothing at all.
        unclocked = RegisterUsage(REGISTER_CELL, [], 16, clocked_cycles=0)
        assert unclocked.energy_per_sample(5.0) == 0.0
        written = RegisterUsage(
            REGISTER_CELL,
            [np.array([0, 0xFFFF, 0], dtype=np.int64)],
            16,
            clocked_cycles=100,
        )
        assert written.energy_per_sample(5.0) > idle


class TestMuxUsage:
    def test_log2_scaling(self):
        two = MuxUsage(MUX_CELL, n_inputs=2, accesses_per_sample=4)
        eight = MuxUsage(MUX_CELL, n_inputs=8, accesses_per_sample=4)
        assert two.switched_legs_per_access == 1
        assert eight.switched_legs_per_access == 3
        assert eight.energy_per_sample(5.0) == pytest.approx(
            3 * two.energy_per_sample(5.0)
        )

    def test_single_source_free(self):
        usage = MuxUsage(MUX_CELL, n_inputs=1, accesses_per_sample=4)
        assert usage.energy_per_sample(5.0) == 0.0
        assert usage.n_legs == 0


class TestInterconnect:
    def test_length_factor(self):
        short = InterconnectUsage(n_connections=10, length_factor=1.0)
        long = InterconnectUsage(n_connections=10, length_factor=2.0)
        assert long.energy_per_sample(5.0) == pytest.approx(
            2 * short.energy_per_sample(5.0)
        )


class TestReport:
    def test_totals_add_up(self):
        fu = FUUsage(mult_cell(), [[streams(), streams(seed=1)]], width=16)
        reg = RegisterUsage(REGISTER_CELL, [streams()], 16, clocked_cycles=8)
        mux = MuxUsage(MUX_CELL, n_inputs=3, accesses_per_sample=3)
        wire = InterconnectUsage(n_connections=12)
        report = estimate_power([fu], [reg], [mux], wire, 5.0, 100.0)
        assert report.total_energy == pytest.approx(
            report.fu_energy
            + report.register_energy
            + report.mux_energy
            + report.wire_energy
        )
        assert report.power == pytest.approx(report.total_energy / 100.0)

    def test_extra_energy_included(self):
        wire = InterconnectUsage(n_connections=0)
        report = estimate_power([], [], [], wire, 5.0, 100.0, extra_energy=50.0)
        assert report.total_energy == 50.0

    def test_bad_period_rejected(self):
        wire = InterconnectUsage(n_connections=0)
        report = estimate_power([], [], [], wire, 5.0, 0.0)
        with pytest.raises(ValueError):
            _ = report.power
