"""Unit tests for Table 3/4 rendering over synthetic sweep results.

These bypass synthesis entirely: hand-built `SynthesisResult`-shaped
stubs verify the normalization arithmetic and layout logic quickly.
"""

from dataclasses import dataclass

import pytest

from repro.reporting import (
    SweepResults,
    render_table3,
    render_table4,
    table3_rows,
    table4_rows,
)
from repro.reporting.sweep import CellResult


@dataclass
class _StubResult:
    area: float
    power: float
    elapsed_s: float = 1.0


def make_cell(circuit: str, laxity: float, scale: float = 1.0) -> CellResult:
    base = _StubResult(area=100.0 * scale, power=10.0 * scale, elapsed_s=4.0)
    return CellResult(
        circuit=circuit,
        laxity=laxity,
        flat_area=base,
        flat_area_scaled=_StubResult(100.0 * scale, 8.0 * scale),
        flat_power=_StubResult(150.0 * scale, 4.0 * scale, 6.0),
        hier_area=_StubResult(105.0 * scale, 11.0 * scale, 2.0),
        hier_area_scaled=_StubResult(105.0 * scale, 9.0 * scale),
        hier_power=_StubResult(160.0 * scale, 4.5 * scale, 2.0),
    )


@pytest.fixture
def sweep():
    results = SweepResults()
    for circuit in ("alpha", "beta"):
        for laxity in (1.2, 2.2):
            results.cells[(circuit, laxity)] = make_cell(circuit, laxity)
    return results


class TestNormalization:
    def test_rows_normalized_to_flat_area(self, sweep):
        cell = sweep.cell("alpha", 1.2)
        assert cell.table3_row_a() == pytest.approx((1.0, 1.5, 1.05, 1.6))
        assert cell.table3_row_p() == pytest.approx((0.8, 0.4, 0.9, 0.45))

    def test_scale_invariance(self):
        """Normalized cells are identical whatever the absolute scale."""
        a = make_cell("c", 1.2, scale=1.0)
        b = make_cell("c", 1.2, scale=7.3)
        assert a.table3_row_a() == pytest.approx(b.table3_row_a())
        assert a.table3_row_p() == pytest.approx(b.table3_row_p())

    def test_synth_times_averaged(self, sweep):
        cell = sweep.cell("alpha", 1.2)
        assert cell.flat_synth_time == pytest.approx((4.0 + 6.0) / 2)
        assert cell.hier_synth_time == pytest.approx(2.0)


class TestTable3Rendering:
    def test_row_structure(self, sweep):
        rows = table3_rows(sweep)
        # Two circuits x two rows (A, P) each.
        assert len(rows) == 4
        # First column of the A row is 1.00 by construction.
        a_row = rows[0]
        assert a_row[1] == "A"
        assert a_row[2] == 1.0

    def test_rendered_text(self, sweep):
        text = render_table3(sweep)
        assert "alpha" in text and "beta" in text
        assert "LF1.2 Fl.A" in text and "LF2.2 Hi.P" in text


class TestTable4Rendering:
    def test_aggregates(self, sweep):
        rows = table4_rows(sweep)
        assert len(rows) == 2
        row = rows[0]
        assert row.area_ratio_flat == pytest.approx(1.5)
        assert row.power_5v_flat == pytest.approx(0.4)
        # Vdd-sc: power-opt vs the scaled area-opt power (4/8).
        assert row.power_vddsc_flat == pytest.approx(0.5)
        assert row.time_flat_s == pytest.approx(5.0)
        assert row.time_hier_s == pytest.approx(2.0)

    def test_rendered_text(self, sweep):
        text = render_table4(sweep)
        assert "Time Fl (s)" in text
        assert "1.20" in text and "2.20" in text
