"""Unit tests for hierarchy flattening."""

import numpy as np
import pytest

from repro.dfg import Design, GraphBuilder, flatten, validate_dfg
from repro.power import simulate_dfg, simulate_subgraph, speech_traces


class TestFlattenStructure:
    def test_flat_has_no_hier_nodes(self, butterfly_design):
        flat = flatten(butterfly_design)
        assert flat.hier_nodes() == []

    def test_operation_count_matches(self, butterfly_design):
        flat = flatten(butterfly_design)
        assert len(flat.op_nodes()) == butterfly_design.total_operations()

    def test_flat_is_valid(self, butterfly_design):
        validate_dfg(flatten(butterfly_design))

    def test_inlined_ids_are_prefixed(self, butterfly_design):
        flat = flatten(butterfly_design)
        assert "h1/badd" in flat
        assert "h2/bsub" in flat

    def test_interface_preserved(self, butterfly_design):
        flat = flatten(butterfly_design)
        assert flat.inputs == butterfly_design.top.inputs
        assert flat.outputs == butterfly_design.top.outputs


class TestFlattenSemantics:
    def test_simulation_equivalence(self, butterfly_design):
        top = butterfly_design.top
        traces = speech_traces(top, n=40, seed=3)
        streams = [traces[n] for n in top.inputs]
        sim_h = simulate_subgraph(butterfly_design, top, streams)
        flat = flatten(butterfly_design)
        sim_f = simulate_dfg(flat, traces)
        for out in top.outputs:
            sig_h = top.in_edges(out)[0].signal
            sig_f = flat.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_h.stream((), sig_h), sim_f.stream((), sig_f)
            )

    def test_nested_hierarchy(self):
        design = Design("nested")
        leaf = GraphBuilder("leaf", behavior="leaf")
        x, y = leaf.inputs("x", "y")
        leaf.output("o", leaf.add(x, y, name="ladd"))
        design.add_dfg(leaf.build())

        mid = GraphBuilder("mid", behavior="mid")
        x, y = mid.inputs("x", "y")
        h = mid.hier("leaf", x, y, name="hl")
        mid.output("o", mid.mult(h, y, name="mm"))
        design.add_dfg(mid.build())

        top = GraphBuilder("top")
        x, y = top.inputs("x", "y")
        top.output("o", top.hier("mid", x, y, name="hm"))
        design.add_dfg(top.build(), top=True)

        flat = flatten(design)
        assert flat.hier_nodes() == []
        assert "hm/hl/ladd" in flat
        assert "hm/mm" in flat

    def test_passthrough_subgraph(self):
        """A sub-DFG where one input feeds an output directly."""
        design = Design("pt")
        sub = GraphBuilder("sub", behavior="sub")
        x, y = sub.inputs("x", "y")
        sub.output("o0", sub.add(x, y, name="sadd"))
        sub.output("o1", y)  # pass-through
        design.add_dfg(sub.build())

        top = GraphBuilder("top")
        x, y = top.inputs("x", "y")
        h = top.hier("sub", x, y, n_outputs=2, name="h")
        top.output("o", top.mult(h[0], h[1], name="m"))
        design.add_dfg(top.build(), top=True)

        flat = flatten(design)
        validate_dfg(flat)
        # The pass-through output resolves straight to the top-level input.
        m_edges = flat.in_edges("m")
        assert ("y", 0) in [e.signal for e in m_edges]

    def test_variant_choice(self):
        """Flatten with a non-default variant expands that variant."""
        design = Design("var")
        v1 = GraphBuilder("v_chain", behavior="sum3")
        a, b, c = v1.inputs("a", "b", "c")
        v1.output("o", v1.add(v1.add(a, b), c))
        design.add_dfg(v1.build())
        v2 = GraphBuilder("v_other", behavior="sum3")
        a, b, c = v2.inputs("a", "b", "c")
        v2.output("o", v2.add(a, v2.add(b, c)))
        design.add_dfg(v2.build())

        top = GraphBuilder("top")
        x, y, z = top.inputs("x", "y", "z")
        top.output("o", top.hier("sum3", x, y, z, name="h"))
        design.add_dfg(top.build(), top=True)

        flat_default = flatten(design)
        flat_v2 = flatten(design, choose=lambda b: design.dfg("v_other"))
        assert len(flat_default.op_nodes()) == len(flat_v2.op_nodes()) == 2
        # Structures differ: default chains (a+b)+c, variant chains a+(b+c).
        def edge_set(dfg):
            return {(e.src, e.src_port, e.dst, e.dst_port) for e in dfg.edges()}

        assert edge_set(flat_default) != edge_set(flat_v2)
