"""Unit tests for move generation (types A, B, C, D)."""

import pytest

from repro.dfg import GraphBuilder, Design, Operation
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis import EvaluationContext
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    normalize_registers,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)

NONE_LOCKED = frozenset()


def adder_chain_design() -> Design:
    """Four additions where two form a perfect chain (chaining bait)."""
    b = GraphBuilder("chain_top")
    w, x, y, z = b.inputs("w", "x", "y", "z")
    a1 = b.add(w, x, name="a1")
    a2 = b.add(a1, y, name="a2")      # a1 feeds only a2: chainable
    a3 = b.add(y, z, name="a3")
    a4 = b.add(a3, a2, name="a4")
    b.output("o", a4)
    design = Design("chain_design")
    design.add_dfg(b.build(), top=True)
    return design


@pytest.fixture
def chain_env():
    design = adder_chain_design()
    from repro.library import default_library

    library = default_library()
    traces = speech_traces(design.top, n=32, seed=1)
    sim = simulate_subgraph(design, design.top, [traces[n] for n in design.top.inputs])
    env = SynthesisEnv(design, library, "area", SynthesisConfig())
    sol = initial_solution(env, design.top, sim, 10.0, 5.0, 400.0)
    return env, sol, sim


class TestTypeA:
    def test_cell_replacements_offered(self, chain_env):
        env, sol, sim = chain_env
        cands = type_a_b_candidates(env, sol, sim, NONE_LOCKED)
        cell_moves = [c for c in cands if c.kind == "A-cell"]
        assert cell_moves
        for cand in cell_moves:
            cand.solution.check_invariants()

    def test_locked_instances_skipped(self, chain_env):
        env, sol, sim = chain_env
        locked = frozenset(sol.instances)
        assert type_a_b_candidates(env, sol, sim, locked) == []

    def test_replacement_changes_exactly_one_instance(self, chain_env):
        env, sol, sim = chain_env
        cands = type_a_b_candidates(env, sol, sim, NONE_LOCKED)
        for cand in cands:
            if cand.kind != "A-cell":
                continue
            (inst_id,) = cand.touched
            assert (
                cand.solution.instances[inst_id].cell.name
                != sol.instances[inst_id].cell.name
            )


class TestSharing:
    def test_fu_share_candidates_valid(self, chain_env):
        env, sol, sim = chain_env
        cands = sharing_candidates(env, sol, sim, NONE_LOCKED)
        fu_moves = [c for c in cands if c.kind == "C-share-fu"]
        assert fu_moves
        for cand in fu_moves:
            cand.solution.check_invariants()
            assert len(cand.solution.instances) == len(sol.instances) - 1

    def test_register_share_candidates_valid(self, chain_env):
        env, sol, sim = chain_env
        cands = sharing_candidates(env, sol, sim, NONE_LOCKED)
        reg_moves = [c for c in cands if c.kind == "C-share-reg"]
        for cand in reg_moves:
            cand.solution.check_invariants()
            assert not cand.solution.register_conflicts()

    def test_chain_formation(self, chain_env):
        env, sol, sim = chain_env
        cands = sharing_candidates(env, sol, sim, NONE_LOCKED)
        chains = [c for c in cands if c.kind == "C-chain"]
        assert chains
        for cand in chains:
            cand.solution.check_invariants()
            chained = [
                inst for inst in cand.solution.instances.values()
                if inst.cell is not None and inst.cell.chain_length == 2
            ]
            assert chained
        # In the a1+a2 chain, the internal a1 signal lost its register.
        a1_chain = next(c for c in chains if "a1+a2" in c.description)
        assert ("a1", 0) not in [
            s
            for signals in a1_chain.solution.reg_signals.values()
            for s in signals
        ]

    def test_locked_respected(self, chain_env):
        env, sol, sim = chain_env
        locked = frozenset(sol.instances) | frozenset(sol.reg_signals)
        assert sharing_candidates(env, sol, sim, locked) == []


class TestSplitting:
    def test_split_after_share(self, chain_env):
        env, sol, sim = chain_env
        shared = sharing_candidates(env, sol, sim, NONE_LOCKED)
        fu_move = next(c for c in shared if c.kind == "C-share-fu")
        merged = fu_move.solution
        cands = splitting_candidates(env, merged, sim, NONE_LOCKED)
        splits = [c for c in cands if c.kind == "D-split-fu"]
        assert splits
        for cand in splits:
            cand.solution.check_invariants()

    def test_unchain_restores_registers(self, chain_env):
        env, sol, sim = chain_env
        chains = [
            c for c in sharing_candidates(env, sol, sim, NONE_LOCKED)
            if c.kind == "C-chain"
        ]
        chained_sol = chains[0].solution
        dissolved = [
            c for c in splitting_candidates(env, chained_sol, sim, NONE_LOCKED)
            if c.kind == "D-unchain"
        ]
        assert dissolved
        back = dissolved[0].solution
        back.check_invariants()
        assert ("a1", 0) in [
            s for signals in back.reg_signals.values() for s in signals
        ]

    def test_no_splits_on_parallel_solution(self, chain_env):
        env, sol, sim = chain_env
        cands = splitting_candidates(env, sol, sim, NONE_LOCKED)
        assert [c for c in cands if c.kind == "D-split-fu"] == []


class TestModuleMoves:
    def test_module_share_same_behavior(self, butterfly_design, library, butterfly_sim):
        env = SynthesisEnv(butterfly_design, library, "area", SynthesisConfig())
        sol = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        cands = sharing_candidates(env, sol, butterfly_sim, NONE_LOCKED)
        module_moves = [c for c in cands if c.kind == "C-share-module"]
        assert module_moves
        merged = module_moves[0].solution
        merged.check_invariants()
        module_insts = [i for i in merged.instances.values() if i.is_module]
        assert len(module_insts) == 1
        assert len(merged.executions[module_insts[0].inst_id]) == 2

    def test_resynthesis_candidate_generated(
        self, butterfly_design, library, butterfly_sim
    ):
        env = SynthesisEnv(butterfly_design, library, "power", SynthesisConfig())
        sol = initial_solution(
            env, butterfly_design.top, butterfly_sim, 10.0, 5.0, 1000.0
        )
        cands = type_a_b_candidates(env, sol, butterfly_sim, NONE_LOCKED)
        resynth = [c for c in cands if c.kind == "B-resynth"]
        assert resynth
        for cand in resynth:
            cand.solution.check_invariants()
            assert cand.solution.is_feasible()


class TestNormalizeRegisters:
    def test_idempotent(self, chain_env):
        _env, sol, _sim = chain_env
        before = {k: list(v) for k, v in sol.reg_signals.items()}
        normalize_registers(sol)
        assert sol.reg_signals == before
