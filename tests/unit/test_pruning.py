"""Unit tests for Vdd/clock pruning and laxity arithmetic."""

import pytest

from repro.synthesis import (
    candidate_clocks,
    candidate_vdds,
    laxity_sampling_ns,
    min_sampling_period_ns,
)


class TestMinSamplingPeriod:
    def test_flat_critical_path(self, flat_design, library):
        # mult1 (28 ns) -> add1 (9 ns) is the longest chain.
        assert min_sampling_period_ns(flat_design, library) == pytest.approx(37.0)

    def test_hier_design_flattened_first(self, butterfly_design, library):
        # add/sub (9) -> mult (28) -> add (9) = 46 ns.
        assert min_sampling_period_ns(butterfly_design, library) == pytest.approx(46.0)

    def test_laxity_scales(self, flat_design, library):
        base = min_sampling_period_ns(flat_design, library)
        assert laxity_sampling_ns(flat_design, library, 2.2) == pytest.approx(
            2.2 * base
        )

    def test_laxity_below_one_rejected(self, flat_design, library):
        with pytest.raises(ValueError):
            laxity_sampling_ns(flat_design, library, 0.5)


class TestVddPruning:
    def test_tight_budget_keeps_5v_only(self, flat_design, library):
        base = min_sampling_period_ns(flat_design, library)
        assert candidate_vdds(flat_design, library, base * 1.1) == [5.0]

    def test_loose_budget_keeps_all(self, flat_design, library):
        base = min_sampling_period_ns(flat_design, library)
        assert candidate_vdds(flat_design, library, base * 4.0) == [5.0, 3.3, 2.4]

    def test_impossible_budget_empty(self, flat_design, library):
        assert candidate_vdds(flat_design, library, 1.0) == []


class TestClockPruning:
    def test_count_respected(self, library):
        clocks = candidate_clocks(library, 5.0, 300.0, n_clocks=3)
        assert 1 <= len(clocks) <= 3

    def test_within_bounds(self, library):
        for clk in candidate_clocks(library, 5.0, 300.0, n_clocks=4):
            assert 2.0 <= clk <= 300.0

    def test_descending_order(self, library):
        clocks = candidate_clocks(library, 5.0, 300.0, n_clocks=3)
        assert clocks == sorted(clocks, reverse=True)

    def test_scaled_voltage_scales_candidates(self, library):
        c5 = candidate_clocks(library, 5.0, 500.0, n_clocks=1)
        c33 = candidate_clocks(library, 3.3, 500.0, n_clocks=1)
        assert c33[0] > c5[0]

    def test_distinct_candidates(self, library):
        clocks = candidate_clocks(library, 5.0, 300.0, n_clocks=3)
        for i, a in enumerate(clocks):
            for b in clocks[i + 1 :]:
                assert abs(a - b) / b >= 0.02
