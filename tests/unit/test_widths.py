"""Unit tests for bit-width-aware area and power modeling."""

import pytest

from repro.dfg import Design, GraphBuilder
from repro.rtl import ComponentKind, DatapathNetlist
from repro.synthesis import EvaluationContext, build_netlist
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution

from tests.designs import sim_for


def width_design(width: int) -> Design:
    b = GraphBuilder("w", width=width)
    x, y, z = b.inputs("x", "y", "z")
    m = b.mult(x, y, name="m1")
    b.output("o", b.add(m, z, name="a1"))
    design = Design(f"wdesign{width}")
    design.add_dfg(b.build(), top=True)
    return design


def solution_for(design, library):
    sim = sim_for(design, n=24, seed=2)
    env = SynthesisEnv(design, library, "power")
    return initial_solution(env, design.top, sim, 10.0, 5.0, 500.0), sim


class TestNetlistWidths:
    def test_components_carry_width(self, library):
        design = width_design(24)
        solution, _sim = solution_for(design, library)
        netlist = build_netlist(solution)
        for comp in netlist.components(ComponentKind.FUNCTIONAL):
            assert comp.width == 24
        for comp in netlist.components(ComponentKind.REGISTER):
            assert comp.width == 24

    def test_area_scales_linearly(self, library):
        narrow, _ = solution_for(width_design(16), library)
        wide, _ = solution_for(width_design(32), library)
        a16 = build_netlist(narrow).area(library)
        a32 = build_netlist(wide).area(library)
        # Cells double; only the (width-independent) wiring term does not.
        assert a32 > 1.5 * a16

    def test_default_width_neutral(self, library):
        """16-bit designs behave exactly as before the width feature."""
        design = width_design(16)
        solution, _sim = solution_for(design, library)
        netlist = build_netlist(solution)
        for comp in netlist.components():
            if comp.kind != ComponentKind.MODULE:
                assert comp.width_factor == 1.0


class TestPowerWidths:
    def test_energy_scales_with_width(self, library):
        n_sol, n_sim = solution_for(width_design(16), library)
        w_sol, w_sim = solution_for(width_design(32), library)
        e16 = EvaluationContext(n_sim, (), "power").evaluate(n_sol)
        e32 = EvaluationContext(w_sim, (), "power").evaluate(w_sol)
        assert e32.energy_per_sample > 1.4 * e16.energy_per_sample


class TestEmbeddingWidths:
    def test_different_widths_never_overlay(self, library):
        from repro.rtl import embed_netlists

        def netlist(width):
            n = DatapathNetlist(f"n{width}")
            n.add_component("in0", ComponentKind.PORT, "in", width=width)
            n.add_component("out0", ComponentKind.PORT, "out", width=width)
            n.add_component("fu", ComponentKind.FUNCTIONAL, "add1", width=width)
            n.connect("in0", 0, "fu", 0)
            n.connect("fu", 0, "out0", 0)
            return n

        merged = embed_netlists(netlist(16), netlist(32), "m")
        fus = merged.netlist.components(ComponentKind.FUNCTIONAL)
        assert len(fus) == 2
        assert sorted(c.width for c in fus) == [16, 32]
