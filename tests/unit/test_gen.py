"""Unit tests for the seeded design generator (repro.gen)."""

import dataclasses
import json
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.dfg import parse_design, validate_design
from repro.dfg.canonical import design_fingerprint
from repro.gen import (
    DEFAULT_OP_WEIGHTS,
    GenConfig,
    build_corpus,
    generate_batch,
    generate_design,
    load_manifest,
    write_corpus,
)
from repro.power import simulate_subgraph


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = generate_design(42)
        b = generate_design(42)
        assert a.text == b.text
        assert design_fingerprint(a.design, a.design.top) == (
            design_fingerprint(b.design, b.design.top)
        )

    def test_same_seed_same_stimulus(self):
        a = generate_design(42)
        b = generate_design(42)
        assert sorted(a.traces) == sorted(b.traces)
        for name in a.traces:
            np.testing.assert_array_equal(a.traces[name], b.traces[name])

    def test_different_seeds_differ(self):
        texts = {generate_design(seed).text for seed in range(8)}
        assert len(texts) == 8

    def test_config_is_part_of_the_pair(self):
        base = generate_design(7)
        other = generate_design(
            7, dataclasses.replace(GenConfig(), ops_per_dfg=(8, 12))
        )
        assert base.text != other.text

    def test_cross_process_byte_identity(self, tmp_path):
        """Same (seed, config) in a fresh interpreter: identical bytes.

        Guards against accidental dependence on hash randomization, set
        iteration order, or any other per-process state.
        """
        script = textwrap.dedent(
            """
            import sys
            from repro.gen import generate_design
            for seed in (0, 1, 99, 12345):
                sys.stdout.write(generate_design(seed).text)
            """
        )
        runs = [
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
            ).stdout
            for _ in range(2)
        ]
        local = "".join(generate_design(s).text for s in (0, 1, 99, 12345))
        assert runs[0] == runs[1] == local

    def test_batch_seeds_are_deterministic_and_distinct(self):
        a = generate_batch(5, 10)
        b = generate_batch(5, 10)
        assert [g.seed for g in a] == [g.seed for g in b]
        assert len({g.seed for g in a}) == 10
        assert all(x.text == y.text for x, y in zip(a, b))


class TestValidity:
    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_designs_validate_at_every_depth(self, depth):
        config = dataclasses.replace(GenConfig(), hierarchy_depth=depth)
        for seed in range(10):
            gen = generate_design(seed, config)
            validate_design(gen.design)
            assert gen.design.depth() <= depth

    def test_flat_config_produces_flat_designs(self):
        config = dataclasses.replace(
            GenConfig(), n_behaviors=(0, 0), hierarchy_depth=1
        )
        for seed in range(5):
            gen = generate_design(seed, config)
            assert gen.design.depth() == 1
            assert not gen.design.top.hier_nodes()

    def test_text_round_trips(self):
        gen = generate_design(13)
        reparsed = parse_design(gen.text)
        validate_design(reparsed)
        assert design_fingerprint(reparsed, reparsed.top) == (
            design_fingerprint(gen.design, gen.design.top)
        )

    def test_traces_cover_top_inputs(self):
        gen = generate_design(21)
        assert set(gen.traces) == set(gen.design.top.inputs)
        for stream in gen.traces.values():
            assert len(stream) == gen.config.n_samples

    def test_op_mix_is_configurable(self):
        # An add-only mix must emit no other operation.
        config = dataclasses.replace(
            GenConfig(), op_weights=(("add", 1),), variants_per_behavior=(1, 1)
        )
        for seed in range(5):
            gen = generate_design(seed, config)
            for dfg in gen.design.dfgs():
                for node in dfg.op_nodes():
                    assert node.op.name.lower() == "add"

    def test_default_weights_cover_full_alphabet(self):
        from repro.dfg.ops import Operation

        weighted = {name for name, _w in DEFAULT_OP_WEIGHTS}
        assert weighted == {op.name.lower() for op in Operation}


class TestAnisomorphicVariants:
    def test_variants_are_bit_true_equivalent(self):
        """Every extra variant must compute exactly the base behavior."""
        config = dataclasses.replace(
            GenConfig(), variants_per_behavior=(2, 3)
        )
        checked = 0
        for seed in range(8):
            gen = generate_design(seed, config)
            design = gen.design
            rng = np.random.default_rng(seed)
            for behavior in design.behaviors():
                variants = design.variants(behavior)
                base = variants[0]
                streams = [
                    rng.integers(-1000, 1000, size=12) for _ in base.inputs
                ]
                def out_streams(dfg):
                    sim = simulate_subgraph(design, dfg, streams)
                    return [
                        sim.stream((), dfg.in_edges(o)[0].signal)
                        for o in dfg.outputs
                    ]

                base_out = out_streams(base)
                for variant in variants[1:]:
                    for got, want in zip(out_streams(variant), base_out):
                        np.testing.assert_array_equal(got, want)
                    checked += 1
        assert checked > 0


class TestCorpus:
    def test_write_and_load_round_trip(self, tmp_path):
        generated = build_corpus(3, 5)
        manifest_path = write_corpus(tmp_path, generated)
        manifest = load_manifest(tmp_path)
        assert manifest_path.name == "manifest.json"
        assert len(manifest["entries"]) == 5
        for entry, gen in zip(manifest["entries"], generated):
            assert entry["seed"] == gen.seed
            text = (tmp_path / entry["file"]).read_text()
            assert text == gen.text
            reparsed = parse_design(text)
            assert design_fingerprint(reparsed, reparsed.top) == (
                entry["fingerprint"]
            )

    def test_entries_regenerate_from_seed_alone(self, tmp_path):
        generated = build_corpus(3, 4)
        write_corpus(tmp_path, generated)
        manifest = load_manifest(tmp_path)
        for entry in manifest["entries"]:
            regen = generate_design(entry["seed"])
            assert regen.text == (tmp_path / entry["file"]).read_text()

    def test_manifest_is_stable_json(self, tmp_path):
        generated = build_corpus(9, 3)
        write_corpus(tmp_path / "a", generated)
        write_corpus(tmp_path / "b", generated)
        a = (tmp_path / "a" / "manifest.json").read_text()
        b = (tmp_path / "b" / "manifest.json").read_text()
        assert a == b
        json.loads(a)  # well-formed

    def test_version_mismatch_rejected(self, tmp_path):
        write_corpus(tmp_path, build_corpus(1, 1))
        path = tmp_path / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            load_manifest(tmp_path)
