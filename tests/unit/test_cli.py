"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dfg import write_design

DESIGN_TEXT = """
design tiny
top main

dfg main
  input x
  input y
  op m mult x y
  op a add m y
  output out a
end
"""


@pytest.fixture
def design_file(tmp_path):
    path = tmp_path / "tiny.dfg"
    path.write_text(DESIGN_TEXT)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synth_needs_constraint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synth", "--benchmark", "paulin"])


class TestInfo:
    def test_prints_statistics(self, design_file, capsys):
        assert main(["info", str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "design 'tiny'" in out
        assert "2 operations" in out

    def test_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.dfg"
        bad.write_text("dfg x\n weird\nend\n")
        assert main(["info", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_file(self, tmp_path, capsys):
        assert main(["info", str(tmp_path / "nope.dfg")]) == 1


class TestSynth:
    def test_synthesize_file(self, design_file, capsys, tmp_path):
        netlist = tmp_path / "out.v"
        fsm = tmp_path / "out.fsm"
        code = main(
            [
                "synth",
                str(design_file),
                "--laxity", "2.0",
                "--objective", "area",
                "--netlist", str(netlist),
                "--fsm", str(fsm),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "area:" in out and "power:" in out
        assert netlist.read_text().startswith("module")
        assert "states" in fsm.read_text()

    def test_synthesize_benchmark_flat(self, capsys):
        code = main(
            [
                "synth",
                "--benchmark", "paulin",
                "--laxity", "2.2",
                "--objective", "area",
                "--flatten",
                "--samples", "24",
            ]
        )
        assert code == 0
        assert "(flattened)" in capsys.readouterr().out

    def test_voltage_scale_flag(self, design_file, capsys):
        code = main(
            [
                "synth",
                str(design_file),
                "--laxity", "3.0",
                "--objective", "area",
                "--voltage-scale",
                "--samples", "24",
            ]
        )
        assert code == 0

    def test_impossible_constraint_reports_error(self, design_file, capsys):
        code = main(
            [
                "synth",
                str(design_file),
                "--sampling-ns", "1",
                "--objective", "area",
            ]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_corners_flag_prints_sweep(self, design_file, capsys):
        code = main(
            [
                "synth",
                str(design_file),
                "--laxity", "2.0",
                "--objective", "area",
                "--corners",
                "--samples", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("slow", "typ", "fast"):
            assert name in out
        assert "pareto" in out

    def test_corners_with_cache_dir(self, design_file, capsys, tmp_path):
        args = [
            "synth",
            str(design_file),
            "--laxity", "2.0",
            "--objective", "area",
            "--corners",
            "--samples", "16",
            "--cache-dir", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0  # second run answers from the store
        warm = capsys.readouterr().out
        assert cold[cold.index("corner"):] == warm[warm.index("corner"):]

    def test_stats_flag_prints_telemetry(self, design_file, capsys):
        code = main(
            [
                "synth",
                str(design_file),
                "--laxity", "2.0",
                "--objective", "area",
                "--stats",
                "--samples", "16",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Synthesis statistics" in out
        assert "evaluations" in out
        assert "cost-cache hit rate" in out

    def test_workers_flag(self, design_file, capsys):
        code = main(
            [
                "synth",
                str(design_file),
                "--laxity", "2.0",
                "--objective", "area",
                "--workers", "2",
                "--samples", "16",
            ]
        )
        assert code == 0
        assert "area:" in capsys.readouterr().out

    def test_trace_family_choices(self, design_file):
        for family in ("white", "image"):
            code = main(
                [
                    "synth",
                    str(design_file),
                    "--laxity", "2.0",
                    "--objective", "area",
                    "--traces", family,
                    "--samples", "16",
                ]
            )
            assert code == 0


class TestGen:
    def test_stdout_single_design_parses(self, capsys):
        from repro.dfg import parse_design, validate_design

        assert main(["gen", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        validate_design(parse_design(out))

    def test_stdout_is_deterministic(self, capsys):
        main(["gen", "--seed", "7", "--count", "3"])
        first = capsys.readouterr().out
        main(["gen", "--seed", "7", "--count", "3"])
        assert capsys.readouterr().out == first

    def test_corpus_directory(self, tmp_path, capsys):
        from repro.gen import load_manifest

        out_dir = tmp_path / "corpus"
        code = main(
            ["gen", "--seed", "3", "--count", "4", "--out-dir", str(out_dir)]
        )
        assert code == 0
        assert "wrote 4 designs" in capsys.readouterr().out
        manifest = load_manifest(out_dir)
        assert len(manifest["entries"]) == 4
        for entry in manifest["entries"]:
            assert (out_dir / entry["file"]).exists()

    def test_config_knobs_change_output(self, capsys):
        main(["gen", "--seed", "7"])
        base = capsys.readouterr().out
        main(["gen", "--seed", "7", "--hierarchy-depth", "1",
              "--max-ops", "3"])
        assert capsys.readouterr().out != base

    def test_flat_knob(self, capsys):
        from repro.dfg import parse_design

        main(["gen", "--seed", "5", "--hierarchy-depth", "1"])
        design = parse_design(capsys.readouterr().out)
        assert design.depth() == 1


class TestCachePrune:
    def test_prune_reports_counts(self, tmp_path, capsys):
        from repro.synthesis.store import SynthesisStore

        store = SynthesisStore(cache_dir=str(tmp_path))
        for i in range(5):
            store.put("module", f"k{i}", ("c", i), i)
        store.close()

        code = main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "2"])
        assert code == 0
        assert "pruned 3 entries" in capsys.readouterr().out

        store = SynthesisStore(cache_dir=str(tmp_path))
        assert store.persistent_stats()["total_entries"] == 2
        store.close()

    def test_prune_missing_store_fails(self, tmp_path, capsys):
        target = tmp_path / "not-a-dir"
        target.write_text("file in the way")
        code = main(["cache", "prune", "--cache-dir", str(target / "sub"),
                     "--max-entries", "2"])
        assert code == 1
        assert "no usable store" in capsys.readouterr().err


class TestSourceContext:
    def test_parse_errors_name_the_file(self, tmp_path, capsys):
        path = tmp_path / "broken.dfg"
        path.write_text("dfg a\n weird x\nend\ntop a\n")
        code = main(["info", str(path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "broken.dfg:2" in err


class TestServiceParsers:
    """Argument surface of the serve/submit/status subcommands."""

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8000
        assert args.workers == 1
        assert str(args.cache_dir) == ".repro-service"
        assert args.store_shards is None
        assert not args.threads

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4",
             "--cache-dir", "svc", "--store-shards", "8", "--threads",
             "--prune-jobs", "100", "--prune-store", "5000"]
        )
        assert args.port == 0 and args.workers == 4
        assert args.store_shards == 8 and args.threads
        assert args.prune_jobs == 100 and args.prune_store == 5000

    def test_submit_needs_exactly_one_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--laxity", "2.0"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--benchmark", "lat", "--gen-seed", "3",
                 "--laxity", "2.0"]
            )

    def test_submit_needs_exactly_one_constraint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--benchmark", "lat"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["submit", "--benchmark", "lat", "--laxity", "2.0",
                 "--sampling-ns", "400"]
            )

    def test_submit_full_surface(self):
        args = build_parser().parse_args(
            ["submit", "--url", "http://h:1", "--gen-seed", "5",
             "--laxity", "2.0", "--objective", "area", "--traces", "white",
             "--samples", "16", "--seed", "3", "--effort", "full",
             "--flatten", "--verify", "--trace", "--wait",
             "--timeout", "30"]
        )
        assert args.gen_seed == 5 and args.objective == "area"
        assert args.trace is True and args.wait and args.timeout == 30.0

    def test_status_job_id_is_optional(self):
        args = build_parser().parse_args(["status"])
        assert args.job_id is None
        args = build_parser().parse_args(
            ["status", "abc123", "--result", "r.json",
             "--trace", "t.jsonl"]
        )
        assert args.job_id == "abc123"
        assert str(args.result) == "r.json"

    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        code = main(["submit", "--url", "http://127.0.0.1:9",
                     "--benchmark", "lat", "--laxity", "2.0"])
        assert code == 1
        assert "cannot reach service" in capsys.readouterr().err

    def test_status_unreachable_server_fails_cleanly(self, capsys):
        code = main(["status", "--url", "http://127.0.0.1:9"])
        assert code == 1
        assert "cannot reach service" in capsys.readouterr().err
