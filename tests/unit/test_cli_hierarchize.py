"""Unit tests for the CLI 'hierarchize' and 'tables' subcommands."""

import pytest

from repro.bench_suite import get_benchmark
from repro.cli import main
from repro.dfg import parse_design, validate_design, write_design


@pytest.fixture
def lat_file(tmp_path):
    path = tmp_path / "lat.dfg"
    path.write_text(write_design(get_benchmark("lat")))
    return path


class TestHierarchizeCommand:
    def test_prints_summary(self, lat_file, capsys):
        assert main(["hierarchize", str(lat_file), "--max-cluster", "4"]) == 0
        out = capsys.readouterr().out
        assert "derived" in out
        assert "hierarchical nodes" in out

    def test_output_file_parses(self, lat_file, tmp_path, capsys):
        out_path = tmp_path / "derived.dfg"
        code = main(
            [
                "hierarchize",
                str(lat_file),
                "--max-cluster", "4",
                "--output", str(out_path),
            ]
        )
        assert code == 0
        derived = parse_design(out_path.read_text())
        validate_design(derived)
        assert derived.top.hier_nodes()

    def test_min_cluster_controls_granularity(self, lat_file, capsys):
        code = main(
            ["hierarchize", str(lat_file), "--min-cluster", "100"]
        )
        assert code == 0
        assert "derived 0 hierarchical nodes" in capsys.readouterr().out


class TestTablesCommand:
    def test_small_sweep(self, capsys):
        code = main(
            ["tables", "--circuits", "paulin", "--laxity-factors", "2.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Table 4" in out
        assert "paulin" in out
