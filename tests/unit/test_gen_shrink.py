"""Unit tests for failing-design minimization (repro.gen.shrink)."""

import dataclasses

from repro.dfg import validate_design
from repro.dfg.ops import Operation
from repro.gen import GenConfig, generate_design, shrink_design


def _size(design):
    return sum(len(dfg) for dfg in design.dfgs())


class TestShrinkDesign:
    def test_always_true_predicate_reaches_tiny_design(self):
        gen = generate_design(17)
        shrunk = shrink_design(gen.design, lambda d: True, max_checks=400)
        validate_design(shrunk)
        assert _size(shrunk) < _size(gen.design)
        # With nothing constraining the reduction, the result collapses
        # to at most a couple of nodes per remaining output.
        assert _size(shrunk) <= 6

    def test_result_always_validates(self):
        for seed in range(5):
            gen = generate_design(seed)
            # Keep designs that still contain at least one multiply.
            def has_mult(d):
                return any(
                    node.op is Operation.MULT
                    for dfg in d.dfgs()
                    for node in dfg.op_nodes()
                )

            shrunk = shrink_design(gen.design, has_mult, max_checks=100)
            validate_design(shrunk)
            if has_mult(gen.design):
                assert has_mult(shrunk)

    def test_predicate_false_returns_input(self):
        gen = generate_design(3)
        shrunk = shrink_design(gen.design, lambda d: False, max_checks=50)
        assert shrunk is gen.design

    def test_predicate_exception_counts_as_rejection(self):
        gen = generate_design(3)

        def explodes(d):
            raise RuntimeError("unrelated crash")

        shrunk = shrink_design(gen.design, explodes, max_checks=50)
        assert shrunk is gen.design

    def test_extra_variants_get_dropped(self):
        config = dataclasses.replace(
            GenConfig(), variants_per_behavior=(2, 3)
        )
        gen = generate_design(1, config)
        n_variants = sum(
            len(gen.design.variants(b)) for b in gen.design.behaviors()
        )
        assert n_variants > len(gen.design.behaviors())  # setup sanity
        shrunk = shrink_design(gen.design, lambda d: True, max_checks=400)
        for behavior in shrunk.behaviors():
            assert len(shrunk.variants(behavior)) == 1

    def test_max_checks_budget_respected(self):
        gen = generate_design(17)
        calls = 0

        def counting(d):
            nonlocal calls
            calls += 1
            return True

        shrink_design(gen.design, counting, max_checks=5)
        assert calls <= 5

    def test_unreachable_behaviors_pruned(self):
        gen = generate_design(17)
        shrunk = shrink_design(gen.design, lambda d: True, max_checks=400)
        used = {
            node.behavior
            for dfg in shrunk.dfgs()
            for node in dfg.hier_nodes()
        }
        # Besides the top level's own implicit behavior, every surviving
        # behavior must still be called somewhere.
        top_behavior = shrunk.top.behavior
        assert set(shrunk.behaviors()) <= used | {top_behavior}
