"""Unit tests for the module library and equivalence registry."""

import pytest

from repro.dfg import Operation
from repro.errors import LibraryError
from repro.library import EquivalenceRegistry, ModuleLibrary, default_library
from repro.rtl import DatapathNetlist, Profile, RTLModule


def make_module(name: str, behavior: str) -> RTLModule:
    return RTLModule(
        name=name,
        behavior=behavior,
        profile=Profile((0.0, 0.0), (30.0,)),
        cap_internal=2.0,
        netlist=DatapathNetlist(name),
    )


class TestCellQueries:
    def test_fastest_cell(self, library):
        assert library.fastest_cell(Operation.ADD).name == "add1"
        assert library.fastest_cell(Operation.MULT).name == "mult1"

    def test_smallest_cell(self, library):
        assert library.smallest_cell(Operation.ADD).name == "add2"
        assert library.smallest_cell(Operation.MULT).name == "mult2"

    def test_lowest_power_cell(self, library):
        assert library.lowest_power_cell(Operation.MULT).name == "mult2"

    def test_chainable_filter(self, library):
        names = {c.name for c in library.cells_for(Operation.ADD, max_chain=1)}
        assert "chained_add2" not in names
        names_all = {c.name for c in library.cells_for(Operation.ADD)}
        assert "chained_add2" in names_all

    def test_unknown_operation_cell(self, library):
        # Every operation in the default library has at least one cell.
        for op in Operation:
            assert library.cells_for(op), op

    def test_cell_lookup_includes_storage(self, library):
        assert library.cell("reg1").name == "reg1"
        assert library.cell("mux2").name == "mux2"
        with pytest.raises(LibraryError, match="unknown library cell"):
            library.cell("ghost")

    def test_duplicate_cell_rejected(self, library):
        with pytest.raises(LibraryError, match="duplicate"):
            library.add_cell(library.cell("add1"))


class TestComplexModules:
    def test_register_and_query(self, library):
        library.add_complex_module(make_module("m1", "fir"))
        library.add_complex_module(make_module("m2", "fir"))
        assert {m.name for m in library.complex_modules_for("fir")} == {"m1", "m2"}
        assert library.n_complex_modules() == 2

    def test_equivalence_expands_search(self, library):
        library.add_complex_module(make_module("m1", "dot_chain"))
        library.equivalences.declare_equivalent("dot_chain", "dot_tree")
        found = library.complex_modules_for("dot_tree")
        assert [m.name for m in found] == ["m1"]

    def test_unknown_behavior_empty(self, library):
        assert library.complex_modules_for("nothing") == []


class TestEquivalenceRegistry:
    def test_reflexive(self):
        r = EquivalenceRegistry()
        assert r.are_equivalent("a", "a")

    def test_union(self):
        r = EquivalenceRegistry()
        r.declare_equivalent("a", "b")
        r.declare_equivalent("b", "c")
        assert r.are_equivalent("a", "c")
        assert r.equivalence_class("c") == {"a", "b", "c"}

    def test_separate_classes(self):
        r = EquivalenceRegistry()
        r.declare_equivalent("a", "b")
        r.declare_equivalent("x", "y")
        assert not r.are_equivalent("a", "x")
