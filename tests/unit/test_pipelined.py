"""Unit tests for pipelined functional-unit support."""

import pytest

from repro.dfg import GraphBuilder, Operation
from repro.library import STANDARD_CELLS, default_library
from repro.scheduling import TaskSpec, schedule_tasks


def pipe_mult():
    return next(c for c in STANDARD_CELLS if c.name == "pipe_mult1")


def plain_mult():
    return next(c for c in STANDARD_CELLS if c.name == "mult1")


class TestCellModel:
    def test_initiation_interval_one(self):
        assert pipe_mult().initiation_interval(10.0, 5.0) == 1
        assert pipe_mult().delay_cycles(10.0, 5.0) == 3

    def test_plain_cell_interval_equals_delay(self):
        cell = plain_mult()
        assert cell.initiation_interval(10.0, 5.0) == cell.delay_cycles(10.0, 5.0)

    def test_pipelining_costs_area_and_cap(self):
        assert pipe_mult().area > plain_mult().area
        assert pipe_mult().cap > plain_mult().cap


class TestScheduling:
    def _independent_mults(self, n: int):
        b = GraphBuilder("g")
        xs = b.inputs(*[f"x{i}" for i in range(n + 1)])
        for i in range(n):
            b.output(f"o{i}", b.mult(xs[i], xs[i + 1], name=f"m{i}"))
        return b.build()

    def test_pipelined_sharing_overlaps(self):
        """Four mults on one pipelined unit: issues every cycle, so the
        makespan is latency + (n - 1), not n * latency."""
        dfg = self._independent_mults(4)
        tasks = [
            TaskSpec(f"t{i}", (f"m{i}",), "M", 3, initiation_interval=1)
            for i in range(4)
        ]
        res = schedule_tasks(dfg, tasks)
        assert res.length == 3 + 3  # last issue at cycle 3, +3 latency

    def test_unpipelined_sharing_serializes(self):
        dfg = self._independent_mults(4)
        tasks = [
            TaskSpec(f"t{i}", (f"m{i}",), "M", 3) for i in range(4)
        ]
        res = schedule_tasks(dfg, tasks)
        assert res.length == 4 * 3

    def test_results_still_take_full_latency(self):
        dfg = self._independent_mults(2)
        tasks = [
            TaskSpec(f"t{i}", (f"m{i}",), "M", 3, initiation_interval=1)
            for i in range(2)
        ]
        res = schedule_tasks(dfg, tasks)
        for tid in ("t0", "t1"):
            assert res.finish[tid] - res.start[tid] == 3


class TestSynthesisIntegration:
    def test_solution_tasks_carry_interval(self, flat_design, library, flat_sim):
        from repro.synthesis.context import SynthesisEnv
        from repro.synthesis.initial import initial_solution

        env = SynthesisEnv(flat_design, library, "area")
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        m_inst = sol.instance_of("m1")
        sol.set_cell(m_inst, library.cell("pipe_mult1"))
        task = sol.task(f"{m_inst}#0")
        assert task.initiation_interval == 1
        assert sol.is_feasible()

    def test_move_generator_offers_pipelined_cell(self, flat_design, library, flat_sim):
        from repro.synthesis.context import SynthesisEnv
        from repro.synthesis.initial import initial_solution
        from repro.synthesis.moves import type_a_b_candidates

        env = SynthesisEnv(flat_design, library, "area")
        sol = initial_solution(env, flat_design.top, flat_sim, 10.0, 5.0, 500.0)
        cands = type_a_b_candidates(env, sol, flat_sim, frozenset())
        assert any("pipe_mult1" in c.description for c in cands)
