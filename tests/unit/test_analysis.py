"""Unit tests for DFG analyses (ASAP levels, critical path, histograms)."""

from collections import Counter

from repro.dfg import (
    GraphBuilder,
    Operation,
    asap_levels,
    critical_path_length,
    longest_input_output_distance,
    op_histogram,
)


def chain_graph(n: int):
    b = GraphBuilder("chain")
    x, y = b.inputs("x", "y")
    cur = b.add(x, y, name="op0")
    for i in range(1, n):
        cur = b.add(cur, y, name=f"op{i}")
    b.output("o", cur)
    return b.build()


class TestASAP:
    def test_unit_delays_chain(self):
        g = chain_graph(4)
        levels = asap_levels(g, lambda n: 1.0)
        assert levels["op0"] == 0.0
        assert levels["op3"] == 3.0

    def test_custom_delays(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        m = b.mult(x, y, name="m")
        a = b.add(m, y, name="a")
        b.output("o", a)
        g = b.build()
        levels = asap_levels(g, lambda n: 28.0 if n.op == Operation.MULT else 9.0)
        assert levels["a"] == 28.0

    def test_parallel_branches(self):
        b = GraphBuilder("g")
        x, y = b.inputs("x", "y")
        m = b.mult(x, y, name="m")   # slow branch
        a = b.add(x, y, name="a")    # fast branch
        s = b.add(m, a, name="s")
        b.output("o", s)
        g = b.build()
        levels = asap_levels(g, lambda n: 3.0 if n.op == Operation.MULT else 1.0)
        assert levels["s"] == 3.0


class TestCriticalPath:
    def test_chain_length(self):
        g = chain_graph(5)
        assert critical_path_length(g, lambda n: 2.0) == 10.0

    def test_structural_distance(self):
        g = chain_graph(5)
        assert longest_input_output_distance(g) == 5


class TestHistogram:
    def test_counts(self, butterfly_design):
        hist = op_histogram(butterfly_design.top)
        assert hist["hier:butterfly"] == 2
        assert hist[Operation.MULT] == 2
        assert hist[Operation.ADD] == 1

    def test_flat_counts(self, flat_dfg):
        hist = op_histogram(flat_dfg)
        assert hist == Counter(
            {Operation.MULT: 1, Operation.ADD: 1, Operation.SUB: 1}
        )
