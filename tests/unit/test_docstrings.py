"""Docstring-presence (pydocstyle D1) enforcement for the engine.

CI runs ``ruff check`` with the ``D1`` rules selected in pyproject.toml;
this test enforces the same contract with the stdlib ``ast`` module so
it also holds in environments without ruff.  Scope: the synthesis
engine, the search-policy layer, the trace package and the telemetry
module — the subsystems this documentation effort covers.

Mirrors ruff's defaults: modules, public classes and public functions /
methods need docstrings; ``_private`` names, ``__init__``/dunders
(D105/D107 are ignored in pyproject.toml) and trivial overloads do not.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: The packages whose docstring coverage is under contract.
SCOPE = [
    SRC / "search",
    SRC / "synthesis",
    SRC / "trace",
    SRC / "telemetry.py",
]


def _scoped_files() -> list[Path]:
    files: list[Path] = []
    for entry in SCOPE:
        if entry.is_dir():
            files.extend(sorted(entry.rglob("*.py")))
        else:
            files.append(entry)
    assert files, "docstring-coverage scope resolved to no files"
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _missing_in(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{path.name}: module docstring")

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    if ast.get_docstring(child) is None:
                        missing.append(f"{path.name}: class {prefix}{child.name}")
                    visit(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Dunder methods (D105/D107) are exempt, like the ruff
                # config; private helpers are out of scope (D1 only
                # covers public objects).
                if not _is_public(child.name):
                    continue
                if ast.get_docstring(child) is None:
                    missing.append(f"{path.name}: def {prefix}{child.name}")

    visit(tree, "")
    return missing


def test_engine_public_api_is_documented():
    missing: list[str] = []
    for path in _scoped_files():
        missing.extend(_missing_in(path))
    assert not missing, (
        "public objects without docstrings (pydocstyle D1):\n  "
        + "\n  ".join(missing)
    )
