"""Byte-identity of the default search policy against pre-refactor goldens.

The ``repro.search`` refactor moved candidate-family ordering, ranking,
restart scheduling and early termination behind a
:class:`~repro.search.policy.SearchPolicy` seam.  The contract for the
default policy is absolute: the refactored driver must reproduce the
pre-refactor engine **byte for byte** — same moves, same telemetry-fed
eval counters, same trace JSONL.  These goldens were generated from the
engine as it stood before the seam existed (timings disabled, so the
traces are deterministic), and every case runs on both discovery
engines (``relational`` on and off).

When a change *intentionally* moves the search (a new move family, a
cost-model fix), regenerate with::

    PYTHONPATH=src python -m pytest tests/integration/test_search_goldens.py \
        --update-goldens

and commit the refreshed JSONL files under
``tests/integration/goldens/traces/``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.bench_suite import get_benchmark
from repro.gen import GenConfig, generate_design
from repro.power import speech_traces
from repro.synthesis import SynthesisConfig, synthesize
from repro.trace import dumps_trace

GOLDEN_DIR = Path(__file__).parent / "goldens" / "traces"

#: Stimulus pinning for the benchmark cases.
TRACE_SEED = 3
TRACE_SAMPLES = 16
LAXITY = 2.2

#: Generated-corpus shape: hierarchical and flat designs, with
#: anisomorphic variants so move A's module swaps are exercised.
GEN_SEEDS = tuple(range(12))
GEN_CONFIG = dataclasses.replace(
    GenConfig(),
    ops_per_dfg=(4, 14),
    n_behaviors=(0, 2),
    variants_per_behavior=(1, 2),
    n_samples=12,
)
GEN_LAXITY = 2.0


def _trace_config(relational: bool) -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        relational=relational,
        trace=True,
        trace_timings=False,
    )


def _run_benchmark(name: str, relational: bool) -> str:
    design = get_benchmark(name)
    traces = speech_traces(design.top, n=TRACE_SAMPLES, seed=TRACE_SEED)
    result = synthesize(
        design,
        laxity_factor=LAXITY,
        objective="power",
        traces=traces,
        config=_trace_config(relational),
        n_samples=TRACE_SAMPLES,
    )
    return dumps_trace(result.trace_events)


def _run_generated(seed: int, relational: bool) -> str:
    generated = generate_design(seed, GEN_CONFIG)
    result = synthesize(
        generated.design,
        laxity_factor=GEN_LAXITY,
        objective="power",
        traces=generated.traces,
        config=_trace_config(relational),
        n_samples=GEN_CONFIG.n_samples,
    )
    return dumps_trace(result.trace_events)


CASES: dict[str, object] = {
    "paulin": lambda relational: _run_benchmark("paulin", relational),
    "test1": lambda relational: _run_benchmark("test1", relational),
}
for _seed in GEN_SEEDS:
    CASES[f"gen{_seed:02d}"] = (
        lambda relational, seed=_seed: _run_generated(seed, relational)
    )


def _golden_path(name: str, relational: bool) -> Path:
    engine = "relational" if relational else "legacy"
    return GOLDEN_DIR / f"{name}.{engine}.jsonl"


@pytest.mark.parametrize("relational", (True, False),
                         ids=("relational", "legacy"))
@pytest.mark.parametrize("name", sorted(CASES))
def test_default_policy_trace_matches_pre_refactor_golden(
    name, relational, update_goldens
):
    observed = CASES[name](relational)
    path = _golden_path(name, relational)
    if update_goldens:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(observed)
        pytest.skip(f"golden updated: {path}")
    assert path.exists(), (
        f"missing golden {path}; generate it with pytest --update-goldens"
    )
    expected = path.read_text()
    assert observed == expected, (
        f"default-policy trace for {name} ({'relational' if relational else 'legacy'} "
        f"engine) diverged from the pre-refactor golden {path.name}"
    )
