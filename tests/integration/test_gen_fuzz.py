"""Generative differential-fuzzing gates (see repro.gen.fuzz).

Two tiers:

* **smoke slice** (PR-gating, unmarked): a few fixed seeds through the
  full differential round — end-to-end synthesis, RTL verification,
  scalar-vs-batched bit-identity, one cold/warm persistent-store
  cross-check.
* **fuzz gate** (``-m fuzz``, nightly): 200 seeded designs through the
  same oracle, fanned out over worker processes.  Any failure report
  carries its seed, which replays in isolation via::

      PYTHONPATH=src python benchmarks/fuzz_designs.py --replay SEED
"""

import dataclasses
import os
import random
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.gen import GenConfig
from repro.gen.fuzz import check_seed

#: Smaller shapes for the PR-gating slice: same code paths (hierarchy,
#: variants, constants, store), a fraction of the synthesis cost.
SMOKE_CONFIG = dataclasses.replace(
    GenConfig(),
    ops_per_dfg=(2, 4),
    n_behaviors=(1, 1),
    variants_per_behavior=(1, 2),
    n_samples=8,
)

#: Fixed base seed of the 200-design gate (a new seed every night comes
#: from the nightly workflow passing ``--seed $GITHUB_RUN_ID`` to the
#: benchmarks driver instead).
GATE_BASE_SEED = 1998


def _gate_round(task: tuple[int, bool]) -> tuple[int, list[str]]:
    seed, store_check = task
    outcome = check_seed(seed, SMOKE_CONFIG, store_check=store_check)
    return seed, outcome.failures


class TestSmokeSlice:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_fixed_seed_differential_round(self, seed):
        # Seed 0 additionally runs the cold/warm persistent-store
        # cross-check (the most expensive oracle, once is enough here).
        outcome = check_seed(seed, SMOKE_CONFIG, store_check=(seed == 0))
        assert outcome.checks >= 2
        assert outcome.ok, "\n".join(
            f"[seed {seed}] {f} — replay: PYTHONPATH=src python "
            f"benchmarks/fuzz_designs.py --replay {seed}"
            for f in outcome.failures
        )


@pytest.mark.fuzz
class TestFuzzGate:
    def test_200_generated_designs(self):
        seeder = random.Random(GATE_BASE_SEED)
        tasks = [
            (seeder.randrange(1 << 30), k % 16 == 0) for k in range(200)
        ]
        workers = min(8, os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_gate_round, tasks, chunksize=4))
        failures = [
            f"[seed {seed}] {failure}"
            for seed, fails in results
            for failure in fails
        ]
        assert not failures, (
            f"{len(failures)} differential failures "
            "(replay: benchmarks/fuzz_designs.py --replay SEED):\n"
            + "\n".join(failures)
        )
