"""Integration tests for the synthesis job service.

Covers the acceptance surface of the service layer: request
coalescing (identical submissions share one job and one synthesis
run), store-served repeats (byte-identical, no worker involved),
concurrent distinct submissions (registry integrity), the HTTP
endpoint contract, per-job worker teardown (memory-boundedness), and
bit-identity of served results against a direct library run.

The harness runs the real asyncio server with *thread* workers
(``use_processes=False``) so tests are hermetic and fast; the process
path is exercised by the CLI smoke tool (``tools/service_smoke.py``).
"""

import asyncio
import json
import threading

import pytest

from repro.errors import ServiceError, SynthesisError
from repro.power.activity import activity_cache_sizes
from repro.service import JobRequest, ServiceClient
from repro.service.server import ServiceConfig, SynthesisService
from repro.service.worker import run_job


def _design_text(extra_adds: int = 0, name: str = "tiny") -> str:
    """A small flat design; *extra_adds* varies the canonical shape."""
    lines = [
        f"design {name}", "top main", "", "dfg main",
        "  input x", "  input y",
        "  op m mult x y", "  op a0 add m y",
    ]
    for i in range(1, extra_adds + 1):
        lines.append(f"  op a{i} add a{i - 1} y")
    lines += [f"  output out a{extra_adds}", "end", ""]
    return "\n".join(lines)


def _request(**overrides) -> dict:
    base = dict(design_text=_design_text(), laxity_factor=2.0, samples=8)
    base.update(overrides)
    return base


class ServiceHarness:
    """A live service on a background event loop + blocking client."""

    def __init__(self, cache_dir, workers: int = 2):
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self._thread.start()
        self.service = self.call(self._boot(cache_dir, workers))
        self.client = ServiceClient(
            f"http://127.0.0.1:{self.service.bound_port}", timeout_s=30.0
        )

    @staticmethod
    async def _boot(cache_dir, workers) -> SynthesisService:
        service = SynthesisService(ServiceConfig(
            port=0, workers=workers, cache_dir=str(cache_dir),
            use_processes=False,
        ))
        await service.start()
        return service

    def call(self, coro, timeout_s: float = 120.0):
        """Run a coroutine on the service loop; return its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(
            timeout_s
        )

    def submit_pair_atomically(self, *payloads) -> list[dict]:
        """Submit payloads back-to-back *inside the event loop*.

        Dispatch tasks cannot start between the calls, so a duplicate
        is guaranteed to land while its twin is still queued — the
        deterministic way to exercise coalescing.
        """
        async def _go():
            return [
                self.service.submit(payload).payload for payload in payloads
            ]
        return self.call(_go())

    def drain(self) -> None:
        """Wait until every dispatched job task has finished."""
        async def _go():
            while self.service._tasks:
                await asyncio.gather(
                    *tuple(self.service._tasks), return_exceptions=True
                )
        self.call(_go())

    def shutdown(self) -> None:
        self.call(self.service.close())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=10)
        self.loop.close()


@pytest.fixture
def harness(tmp_path):
    h = ServiceHarness(tmp_path / "svc")
    yield h
    h.shutdown()


class TestCoalescing:
    def test_identical_submissions_share_one_job(self, harness):
        r1, r2, r3 = harness.submit_pair_atomically(
            _request(), _request(), _request()
        )
        assert r1["state"] == "queued" and not r1["coalesced"]
        assert r2["coalesced"] and r2["job_id"] == r1["job_id"]
        assert r3["coalesced"] and r3["job_id"] == r1["job_id"]
        harness.drain()
        final = harness.client.status(r1["job_id"])
        assert final["state"] == "done"
        assert final["clients"] == 3
        # One synthesis run served all three clients.
        counters = harness.client.stats()["counters"]
        assert counters["synth_runs"] == 1
        assert counters["coalesce_hits"] == 2

    def test_different_knobs_do_not_coalesce(self, harness):
        r1, r2 = harness.submit_pair_atomically(
            _request(), _request(objective="area")
        )
        assert not r2["coalesced"]
        assert r2["job_id"] != r1["job_id"]
        harness.drain()

    def test_coalesced_clients_read_identical_bytes(self, harness):
        receipts = harness.submit_pair_atomically(_request(), _request())
        harness.drain()
        bodies = {
            json.dumps(harness.client.result(r["job_id"])["result"],
                       sort_keys=True)
            for r in receipts
        }
        assert len(bodies) == 1


class TestStoreServed:
    def test_repeat_answers_from_store_without_worker(self, harness):
        first = harness.client.submit(_request())
        harness.drain()
        repeat = harness.client.submit(_request())
        assert repeat["served_from_store"]
        assert repeat["state"] == "done"
        assert repeat["job_id"] != first["job_id"]
        counters = harness.client.stats()["counters"]
        assert counters["synth_runs"] == 1
        assert counters["store_hits"] == 1
        cold = harness.client.result(first["job_id"])["result"]
        warm = harness.client.result(repeat["job_id"])["result"]
        assert json.dumps(cold, sort_keys=True) == \
            json.dumps(warm, sort_keys=True)

    def test_store_serving_survives_service_restart(self, tmp_path):
        first = ServiceHarness(tmp_path / "svc")
        try:
            cold = first.client.submit(_request())
            first.drain()
            cold_result = first.client.result(cold["job_id"])["result"]
        finally:
            first.shutdown()
        second = ServiceHarness(tmp_path / "svc")
        try:
            warm = second.client.submit(_request())
            assert warm["served_from_store"]
            warm_result = second.client.result(warm["job_id"])["result"]
            assert json.dumps(cold_result, sort_keys=True) == \
                json.dumps(warm_result, sort_keys=True)
        finally:
            second.shutdown()


class TestConcurrentDistinct:
    def test_distinct_submissions_keep_registry_intact(self, harness):
        receipts = harness.submit_pair_atomically(
            *[_request(design_text=_design_text(extra_adds=i))
              for i in range(4)]
        )
        assert len({r["job_id"] for r in receipts}) == 4
        harness.drain()
        fingerprints = set()
        for receipt in receipts:
            status = harness.client.status(receipt["job_id"])
            assert status["state"] == "done", status["error"]
            assert status["summary"]["area"] > 0
            fingerprints.add(status["fingerprint"])
        assert len(fingerprints) == 4
        counts = harness.client.stats()["queue"]
        assert counts["done"] == 4 and counts["failed"] == 0


class TestHTTPContract:
    def test_healthz(self, harness):
        assert harness.client.health()["ok"] is True

    def test_unknown_job_is_404(self, harness):
        with pytest.raises(ServiceError, match="404"):
            harness.client.status("nope")

    def test_unknown_request_field_is_400(self, harness):
        with pytest.raises(ServiceError, match="400"):
            harness.client.submit(_request(laxity=2.0))

    def test_malformed_body_is_400(self, harness):
        with pytest.raises(ServiceError, match="400"):
            harness.client._call("POST", "/jobs", payload="not an object")

    def test_result_of_unfinished_job_is_404(self, harness):
        receipts = harness.submit_pair_atomically(_request())
        try:
            with pytest.raises(ServiceError, match="404"):
                harness.client.result(receipts[0]["job_id"])
        finally:
            harness.drain()

    def test_trace_of_untraced_job_is_404(self, harness):
        receipt = harness.client.submit(_request())
        harness.drain()
        with pytest.raises(ServiceError, match="404"):
            harness.client.trace(receipt["job_id"])

    def test_unroutable_path_is_404(self, harness):
        with pytest.raises(ServiceError, match="404"):
            harness.client._call("GET", "/nope")

    def test_failed_job_reports_error(self, harness):
        # An infeasible constraint: no implementation can meet ~0.01ns.
        receipt = harness.client.submit(
            _request(laxity_factor=None, sampling_ns=0.01)
        )
        harness.drain()
        final = harness.client.status(receipt["job_id"])
        assert final["state"] == "failed"
        assert final["error"]
        counters = harness.client.stats()["counters"]
        assert counters["jobs_failed"] == 1


class TestWorkerTeardown:
    """Satellite fix: long-lived workers must stay memory-bounded."""

    def _payload(self, tmp_path, request: dict) -> dict:
        return {
            "job_id": "t1",
            "request": request,
            "fingerprint": "fp-test",
            "cache_dir": str(tmp_path / "cache"),
            "store_shards": 1,
            "persistent_cache": True,
            "jobs_dir": None,
        }

    def test_repeated_jobs_leave_no_pinned_activity(self, tmp_path):
        for i in range(3):
            result = run_job(self._payload(
                tmp_path, _request(design_text=_design_text(extra_adds=i))
            ))
            assert result["area"] > 0
            assert activity_cache_sizes() == (0, 0), (
                "activity caches must be torn down after every job"
            )

    def test_failed_jobs_also_tear_down(self, tmp_path):
        with pytest.raises(SynthesisError):
            run_job(self._payload(
                tmp_path,
                _request(laxity_factor=None, sampling_ns=0.01),
            ))
        assert activity_cache_sizes() == (0, 0), (
            "the infeasible path must tear caches down too"
        )


class TestBitIdentity:
    def test_served_result_matches_direct_library_run(self, harness, tmp_path):
        """A traced service job is byte-identical to the engine run direct."""
        request = _request(trace=True)
        receipt = harness.client.submit(request)
        harness.drain()
        served = harness.client.result(receipt["job_id"])["result"]
        trace_text = harness.client.trace(receipt["job_id"])

        from repro.dfg import parse_design
        from repro.power import speech_traces
        from repro.reporting.export import result_to_dict
        from repro.rtl import emit_netlist
        from repro.service.worker import job_config
        from repro.synthesis import synthesize
        from repro.trace import write_trace

        # A fresh store configured exactly like the service's (cold, one
        # shard) so even the store-tier telemetry counters must match.
        job = JobRequest.from_dict(request)
        config = job_config(job, {
            "cache_dir": str(tmp_path / "direct-cache"),
            "store_shards": 1,
            "persistent_cache": True,
        })
        design = parse_design(request["design_text"],
                              source="<job request>")
        traces = speech_traces(design.top, n=job.samples, seed=job.seed)
        direct = synthesize(
            design, None, laxity_factor=job.laxity_factor,
            objective="power", traces=traces, config=config,
            n_samples=job.samples,
        )
        def _deterministic(payload: dict) -> dict:
            # Wall-clock riders are the only nondeterminism in a result.
            payload = dict(payload)
            payload.pop("elapsed_s")
            payload["telemetry"] = {
                k: v for k, v in payload["telemetry"].items()
                if k != "stage_s"
            }
            return payload

        direct_dict = result_to_dict(direct)
        served_subset = {k: served[k] for k in direct_dict}
        assert json.dumps(_deterministic(direct_dict), sort_keys=True) == \
            json.dumps(_deterministic(served_subset), sort_keys=True)
        assert emit_netlist(direct.netlist()) == served["netlist"]
        direct_trace = tmp_path / "direct.trace.jsonl"
        write_trace(direct.trace_events, direct_trace)
        assert direct_trace.read_text() == trace_text
