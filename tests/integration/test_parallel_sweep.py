"""Determinism of the parallel operating-point sweep.

The outer (Vdd, clock) loop fans out over a process pool when
``SynthesisConfig.n_workers > 1``; every point runs in a fresh
:class:`~repro.synthesis.context.SynthesisEnv`, which must be
bit-equivalent to the serial path's reset-between-points env.  These
tests pin that contract on two paper benchmarks.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.synthesis import SynthesisConfig, synthesize


def _config(n_workers: int) -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        n_workers=n_workers,
    )


def _run(circuit: str, n_workers: int):
    design = get_benchmark(circuit)
    traces = speech_traces(design.top, n=24, seed=3)
    return synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=_config(n_workers),
        n_samples=24,
    )


@pytest.mark.parametrize("circuit", ["test1", "paulin"])
def test_parallel_matches_serial(circuit):
    serial = _run(circuit, n_workers=1)
    parallel = _run(circuit, n_workers=4)

    assert (parallel.area, parallel.power, parallel.vdd, parallel.clk_ns) == (
        serial.area, serial.power, serial.vdd, serial.clk_ns
    )
    # The whole trajectory matches, not just the winner: the merged
    # worker telemetry equals the serial sweep's cumulative counts.
    assert parallel.telemetry.evaluations == serial.telemetry.evaluations
    assert parallel.telemetry.cache_hits == serial.telemetry.cache_hits
    assert parallel.telemetry.moves_tried == serial.telemetry.moves_tried
    assert parallel.telemetry.moves_committed == serial.telemetry.moves_committed
    assert parallel.telemetry.points_explored == serial.telemetry.points_explored


def test_cost_cache_earns_hits_on_paulin():
    result = _run("paulin", n_workers=1)
    assert result.telemetry.cache_hits > 0
    assert result.telemetry.cache_hit_rate > 0.0
