"""Byte-determinism of the structured search trace.

The contract: with ``trace_timings=False``, the same seed and config
produce **byte-identical** JSONL regardless of how many worker processes
the operating-point sweep used.  Each worker buffers its own events and
the parent merges them in point order — the serial emission order — so
the only nondeterminism a trace could pick up is wall-clock, and the
determinism mode strips exactly that.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.synthesis import SynthesisConfig, synthesize
from repro.trace import SCHEMA_VERSION, dumps_trace, span_kinds


def _config(n_workers: int, timings: bool = False) -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        n_workers=n_workers,
        trace=True,
        trace_timings=timings,
    )


def _run(circuit: str, n_workers: int, timings: bool = False):
    design = get_benchmark(circuit)
    traces = speech_traces(design.top, n=24, seed=3)
    return synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=_config(n_workers, timings),
        n_samples=24,
    )


def test_trace_is_byte_identical_across_worker_counts():
    serial = _run("test1", n_workers=1)
    parallel = _run("test1", n_workers=4)
    assert serial.trace_events, "tracing enabled but no events recorded"
    assert dumps_trace(serial.trace_events) == dumps_trace(parallel.trace_events)


def test_trace_is_byte_identical_across_repeated_runs():
    first = dumps_trace(_run("test1", n_workers=1).trace_events)
    second = dumps_trace(_run("test1", n_workers=1).trace_events)
    assert first == second


def test_trace_events_are_well_formed():
    result = _run("test1", n_workers=1)
    events = result.trace_events
    kinds = span_kinds()
    for event in events:
        assert event["k"] in kinds, f"undocumented span kind {event['k']!r}"
        _desc, fields = kinds[event["k"]]
        required = {f for f in fields if not f.endswith("?")}
        missing = required - set(event)
        extra = set(event) - {"k"} - {f.rstrip("?") for f in fields}
        assert not extra, f"{event['k']} event has undocumented fields {extra}"
        assert not missing, f"{event['k']} event missing fields {missing}"
    assert events[0]["k"] == "run_start"
    assert events[0]["schema"] == SCHEMA_VERSION
    assert events[-1]["k"] == "run_end"
    # The determinism mode excludes worker count and timing knobs from
    # the recorded config, and no event carries a wall-clock field.
    recorded_config = events[0]["config"]
    assert "n_workers" not in recorded_config
    assert not any(k.startswith("trace") for k in recorded_config)
    assert not any("dur_ns" in e for e in events)


def test_timed_trace_carries_spans():
    result = _run("test1", n_workers=1, timings=True)
    assert any("dur_ns" in e for e in result.trace_events)
    assert "stage_s" in result.trace_events[-1]


def test_tracing_off_records_nothing():
    design = get_benchmark("test1")
    traces = speech_traces(design.top, n=24, seed=3)
    config = _config(1)
    config.trace = False
    result = synthesize(
        design, laxity_factor=2.2, objective="power",
        traces=traces, config=config, n_samples=24,
    )
    assert result.trace_events is None


@pytest.mark.slow
def test_trace_determinism_on_paulin_with_library():
    serial = _run("paulin", n_workers=1)
    parallel = _run("paulin", n_workers=4)
    assert dumps_trace(serial.trace_events) == dumps_trace(parallel.trace_events)
