"""Relational engine ≡ legacy loops, from generated corpus to traces.

Two layers of evidence that ``--no-relational`` is a bit-exact
fallback:

* a property test over the :mod:`repro.gen` corpus asserting the two
  engines discover identical candidate multisets (ordered by
  :func:`~repro.synthesis.moves.candidate_order_key`, the total order
  the improvement loop breaks ties with) and that every lazy
  descriptor's precomputed fingerprint equals its materialized clone's;
* an end-to-end traced run asserting byte-identical trace JSONL and
  equal final metrics across engines — equal multisets per step imply
  equal trajectories, and the trace is the step-by-step witness.
"""

import dataclasses

import pytest

from repro.bench_suite import get_benchmark
from repro.gen import GenConfig, generate_design
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis import SynthesisConfig, synthesize
from repro.synthesis.context import SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    candidate_order_key,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from repro.synthesis.relational import RelationalView
from repro.trace import dumps_trace

NONE_LOCKED = frozenset()

#: Flat and hierarchical shapes; discovery equivalence must hold for
#: both (module instances exercise the families that *stay* on the
#: shared Python helpers next to the relational ones).
CORPUS_CONFIG = dataclasses.replace(
    GenConfig(),
    ops_per_dfg=(4, 18),
    n_behaviors=(0, 2),
    variants_per_behavior=(1, 2),
    n_samples=8,
)


class TestGeneratedCorpus:
    @pytest.mark.parametrize("seed", range(12))
    def test_discovery_multisets_identical(self, seed):
        generated = generate_design(seed, CORPUS_CONFIG)
        design, traces = generated.design, generated.traces
        top = design.top
        sim = simulate_subgraph(
            design, top, [traces[name] for name in top.inputs]
        )
        env = SynthesisEnv(design, default_library(), "power", SynthesisConfig())
        solution = initial_solution(env, top, sim, 10.0, 5.0, 2000.0)

        view = RelationalView(env, solution, NONE_LOCKED)
        relational = (
            list(type_a_b_candidates(env, solution, sim, NONE_LOCKED, view=view))
            + sharing_candidates(env, solution, sim, NONE_LOCKED, view=view)
            + splitting_candidates(env, solution, sim, NONE_LOCKED, view=view)
        )
        legacy = (
            list(type_a_b_candidates(env, solution, sim, NONE_LOCKED, view=None))
            + sharing_candidates(env, solution, sim, NONE_LOCKED, view=None)
            + splitting_candidates(env, solution, sim, NONE_LOCKED, view=None)
        )
        assert sorted(candidate_order_key(c) for c in relational) == sorted(
            candidate_order_key(c) for c in legacy
        ), f"discovery diverged on generated seed {seed}"

        for cand in relational:
            if not cand.is_materialized:
                assert cand.fingerprint_key() == cand.solution.fingerprint_key(), (
                    f"seed {seed}: {cand.kind} descriptor fingerprint "
                    "diverges from its materialized clone"
                )


def _traced(circuit: str, relational: bool):
    design = get_benchmark(circuit)
    traces = speech_traces(design.top, n=24, seed=3)
    config = SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        n_workers=1,
        trace=True,
        trace_timings=False,
        relational=relational,
    )
    return synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=config,
        n_samples=24,
    )


class TestEndToEndBitIdentity:
    @pytest.mark.parametrize("circuit", ["paulin", "test1"])
    def test_trace_and_costs_identical(self, circuit):
        default = _traced(circuit, relational=True)
        fallback = _traced(circuit, relational=False)
        assert default.trace_events, "tracing enabled but no events recorded"
        assert dumps_trace(default.trace_events) == dumps_trace(
            fallback.trace_events
        ), f"--no-relational trace diverges from default on {circuit}"
        assert default.metrics == fallback.metrics
        assert default.vdd == fallback.vdd
        assert default.clk_ns == fallback.clk_ns
        assert sorted(default.solution.instances) == sorted(
            fallback.solution.instances
        )
