"""Shape-level checks of the paper's headline claims (Section 5).

Absolute numbers depend on the characterization substrate (DESIGN.md),
so these tests assert the *qualitative* results: who wins, and in which
direction the knobs move things.
"""

import pytest

from repro.bench_suite import example3_dfg1, example3_dfg2, get_benchmark

# Full synthesize/synthesize_flat sweeps dominate tier-1 wall time;
# the golden snapshots (test_golden.py) guard costs at PR time instead.
pytestmark = pytest.mark.slow
from repro.library import default_library
from repro.reporting import quick_config
from repro.synthesis import (
    synthesize,
    synthesize_flat,
    voltage_scale,
)
from repro.synthesis.library_gen import build_complex_library


@pytest.fixture(scope="module")
def test1_runs():
    design = get_benchmark("test1")
    config = quick_config()
    flat_lib = default_library()
    hier_lib = build_complex_library(design, default_library(), config=config)
    return {
        "flat_area": synthesize_flat(
            design, flat_lib, laxity_factor=2.2, objective="area", config=config
        ),
        "flat_power": synthesize_flat(
            design, flat_lib, laxity_factor=2.2, objective="power", config=config
        ),
        "hier_area": synthesize(
            design, hier_lib, laxity_factor=2.2, objective="area", config=config
        ),
        "hier_power": synthesize(
            design, hier_lib, laxity_factor=2.2, objective="power", config=config
        ),
    }


class TestPowerOptimization:
    def test_power_mode_beats_area_mode_on_power(self, test1_runs):
        assert test1_runs["flat_power"].power < test1_runs["flat_area"].power
        assert test1_runs["hier_power"].power < test1_runs["hier_area"].power

    def test_power_savings_substantial(self, test1_runs):
        """Power-optimized circuits save a large factor vs 5 V area-opt
        (the paper reports 1.8x-6.7x across the sweep)."""
        ratio = test1_runs["flat_power"].power / test1_runs["flat_area"].power
        assert ratio < 0.75

    def test_area_mode_beats_power_mode_on_area(self, test1_runs):
        assert test1_runs["flat_area"].area < test1_runs["flat_power"].area
        assert test1_runs["hier_area"].area < test1_runs["hier_power"].area

    def test_power_opt_uses_reduced_supply(self, test1_runs):
        assert test1_runs["flat_power"].vdd < 5.0
        assert test1_runs["hier_power"].vdd < 5.0


class TestVoltageScaling:
    def test_scaling_monotone(self, test1_runs):
        scaled = voltage_scale(test1_runs["flat_area"], continuous=True)
        assert scaled.power <= test1_runs["flat_area"].power
        assert scaled.area == pytest.approx(test1_runs["flat_area"].area)


class TestHierVsFlat:
    def test_hier_area_close_to_flat(self, test1_runs):
        """The paper's differentiator: hierarchical results are compact,
        unlike earlier hierarchical systems (avg overhead 5.6%; we allow
        a looser band for the reduced-effort config)."""
        ratio = test1_runs["hier_area"].area / test1_runs["flat_area"].area
        assert ratio < 2.0

    def test_hier_power_comparable(self, test1_runs):
        ratio = test1_runs["hier_power"].power / test1_runs["flat_power"].power
        assert ratio < 1.5


class TestSynthesisTime:
    def test_hier_faster_on_large_benchmark(self):
        """Table 4's CPU-time column: hierarchical synthesis is several
        times faster once the flattened graph is big (avenhaus: 45 ops
        flat vs 3 hierarchical nodes)."""
        design = get_benchmark("avenhaus_cascade")
        config = quick_config()
        hier_lib = build_complex_library(
            design, default_library(), config=config
        )
        flat = synthesize_flat(
            design, default_library(), laxity_factor=2.2, objective="area",
            config=config,
        )
        hier = synthesize(
            design, hier_lib, laxity_factor=2.2, objective="area", config=config
        )
        assert hier.elapsed_s < flat.elapsed_s


class TestRTLEmbeddingClaim:
    def test_merged_module_area_shape(self):
        """Example 3: NewRTL (61.67) is close to the larger constituent
        (57.94) and far below the sum (111.83)."""
        from repro.bench_suite import table2_library
        from repro.dfg import Design
        from repro.power import simulate_subgraph, speech_traces
        from repro.rtl import embed_netlists
        from repro.synthesis import build_netlist
        from repro.synthesis.context import SynthesisEnv
        from repro.synthesis.initial import initial_solution

        library = table2_library()
        design = Design("ex3")
        dfg1, dfg2 = example3_dfg1(), example3_dfg2()
        design.add_dfg(dfg1, top=True)
        design.add_dfg(dfg2)

        netlists = []
        for dfg in (dfg1, dfg2):
            traces = speech_traces(dfg, n=24, seed=0)
            sim = simulate_subgraph(design, dfg, [traces[n] for n in dfg.inputs])
            env = SynthesisEnv(design, library, "area")
            sol = initial_solution(env, dfg, sim, 10.0, 5.0, 1000.0)
            netlists.append(build_netlist(sol, name=dfg.name))

        area1 = netlists[0].area(library)
        area2 = netlists[1].area(library)
        merged = embed_netlists(netlists[0], netlists[1], "NewRTL")
        merged_area = merged.netlist.area(library)
        assert merged_area < 0.8 * (area1 + area2)
        assert merged_area >= max(area1, area2) - 1e-9
        assert merged_area < 1.35 * max(area1, area2)
