"""Smoke test: every example script imports cleanly.

Execution of the heavy examples is covered manually / by CI scripts;
importing them verifies their syntax and top-level dependencies without
running minutes of synthesis.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        assert hasattr(module, "main"), f"{path.stem} must define main()"
    finally:
        sys.modules.pop(spec.name, None)


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "power_vs_area_tradeoff",
        "rtl_embedding_demo",
        "hierarchical_vs_flat",
        "voltage_scaling_sweep",
        "custom_design",
        "hierarchy_discovery",
    } <= names
