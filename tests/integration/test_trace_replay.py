"""The PR's acceptance contract: report + bit-identical replay on paulin.

A power-mode paulin run is traced; the report must print per-pass gain
attribution by move type, and replaying the recorded committed move
sequence — with inputs reconstructed purely from the trace's provenance
— must reproduce the final committed cost **bit-identically** and pass
the differential RTL verification oracle.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.synthesis import SynthesisConfig, synthesize
from repro.trace import dumps_trace, load_trace, replay_trace
from repro.trace.cli import main as trace_main
from repro.trace.report import render_report


def _config() -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        trace=True,
        trace_timings=False,
        # Provenance equivalent to the CLI's --trace metadata: lets
        # replay_trace rebuild design/library/stimulus standalone.
        trace_meta={
            "benchmark": "paulin",
            "design_path": None,
            "traces": "speech",
            "seed": 3,
            "samples": 24,
            "built_library": False,
        },
    )


@pytest.fixture(scope="module")
def paulin_run():
    design = get_benchmark("paulin")
    traces = speech_traces(design.top, n=24, seed=3)
    result = synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=_config(),
        n_samples=24,
    )
    return design, traces, result


def test_report_attributes_gain_by_move_type(paulin_run):
    _design, _traces, result = paulin_run
    text = render_report(result.trace_events)
    assert "trace: paulin — objective power" in text
    assert "winner: point" in text
    assert "committed prefix" in text
    assert "gain attribution by move family" in text
    # Every column of the attribution table is present.
    for column in ("tried", "chosen", "committed", "neg-gain",
                   "committed gain"):
        assert column in text


def test_replay_reproduces_cost_bit_identically(paulin_run):
    design, traces, result = paulin_run
    replayed = replay_trace(
        result.trace_events, design=design, traces=traces, verify=True
    )
    assert replayed.n_moves > 0
    # Bit-identical equality, not approximate.
    assert replayed.cost == replayed.recorded_cost
    assert replayed.verification is not None and replayed.verification.ok
    assert replayed.ok
    # The replayed architecture prices to the winner's metrics too.
    assert (replayed.vdd, replayed.clk_ns) == (result.vdd, result.clk_ns)


def test_replay_standalone_from_provenance(paulin_run):
    _design, _traces, result = paulin_run
    # No design/library/traces passed: everything is reconstructed from
    # the run_start provenance — the `repro-trace replay file` path.
    replayed = replay_trace(result.trace_events, verify=False)
    assert replayed.ok
    assert replayed.cost == replayed.recorded_cost


def test_trace_cli_round_trip(paulin_run, tmp_path, capsys):
    _design, _traces, result = paulin_run
    path = tmp_path / "paulin.jsonl"
    path.write_text(dumps_trace(result.trace_events))
    assert load_trace(path) == result.trace_events

    assert trace_main(["report", str(path)]) == 0
    report_out = capsys.readouterr().out
    assert "gain attribution by move family" in report_out

    assert trace_main(["replay", str(path), "--no-verify"]) == 0
    replay_out = capsys.readouterr().out
    assert "bit-identical" in replay_out

    assert trace_main(["profile", str(path)]) == 0
    assert "no timing spans" in capsys.readouterr().out
