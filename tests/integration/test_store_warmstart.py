"""Cold-vs-warm determinism of the persistent synthesis store.

The tentpole contract of the tiered store: synthesis results are
**bit-identical** whether the store starts empty (cold) or pre-populated
by an earlier identical run (warm) — same winner, same generated module
names, same netlist text, same trace.  The cache changes wall-clock
only, never results.
"""

import pytest

from repro.bench_suite import get_benchmark
from repro.power import speech_traces
from repro.rtl import emit_netlist
from repro.synthesis import SynthesisConfig, synthesize

SEED = 11
SAMPLES = 24
LAXITY = 2.2


def _config(cache_dir, n_workers=1, trace=True):
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        n_workers=n_workers,
        cache_dir=str(cache_dir) if cache_dir else None,
        trace=trace,
        trace_timings=False,
    )


def _run(circuit, cache_dir, n_workers=1, objective="power", trace=True):
    design = get_benchmark(circuit)
    traces = speech_traces(design.top, n=SAMPLES, seed=SEED)
    return synthesize(
        design,
        laxity_factor=LAXITY,
        objective=objective,
        traces=traces,
        config=_config(cache_dir, n_workers, trace),
        n_samples=SAMPLES,
    )


def _identity(result):
    return (
        result.area,
        result.power,
        result.vdd,
        result.clk_ns,
        result.metrics.schedule_length,
        emit_netlist(result.netlist()),
    )


class TestColdVsWarm:
    def test_bit_identical_and_warm_hits(self, tmp_path):
        cold = _run("test1", tmp_path)
        warm = _run("test1", tmp_path)

        assert _identity(warm) == _identity(cold)
        # Identical search trajectory, not just an identical winner:
        # with timings off the traces must match event for event.
        assert warm.trace_events == cold.trace_events
        # The warm run actually used the disk tier.
        persistent_hits = sum(
            n for key, n in warm.telemetry.store_hits.items()
            if key.startswith("persistent.")
        )
        assert persistent_hits > 0

    def test_warm_matches_uncached_run(self, tmp_path):
        uncached = _run("test1", None)
        _run("test1", tmp_path)
        warm = _run("test1", tmp_path)
        assert _identity(warm) == _identity(uncached)
        assert warm.trace_events == uncached.trace_events

    def test_parallel_workers_share_persistent_tier(self, tmp_path):
        serial_cold = _run("test1", None)
        parallel_cold = _run("test1", tmp_path, n_workers=2)
        parallel_warm = _run("test1", tmp_path, n_workers=2)
        assert _identity(parallel_cold) == _identity(serial_cold)
        assert _identity(parallel_warm) == _identity(serial_cold)
        assert parallel_warm.trace_events == serial_cold.trace_events

    def test_warm_result_verifies(self, tmp_path):
        _run("test1", tmp_path)
        warm = _run("test1", tmp_path)
        check = warm.verify()
        assert check.ok


class TestRunTierSharing:
    def test_cross_point_hits_without_cache_dir(self):
        """The in-memory run tier answers across operating points."""
        result = _run("test1", None)
        run_hits = sum(
            n for key, n in result.telemetry.store_hits.items()
            if key.startswith("run.")
        )
        assert run_hits > 0


class TestMetricsSharing:
    """Untraced runs additionally warm-start the pricing layer itself."""

    def test_untraced_cold_vs_warm_identical(self, tmp_path):
        cold = _run("test1", tmp_path, trace=False)
        warm = _run("test1", tmp_path, trace=False)
        assert _identity(warm) == _identity(cold)
        # The warm run answered top-level evaluations from disk.
        assert warm.telemetry.store_hits.get("persistent.metrics", 0) > 0

    def test_untraced_warm_matches_traced_run(self, tmp_path):
        """Metrics sharing changes wall-clock, never the search."""
        traced = _run("test1", None, trace=True)
        _run("test1", tmp_path, trace=False)
        warm = _run("test1", tmp_path, trace=False)
        assert _identity(warm) == _identity(traced)

    def test_traced_top_level_pricing_never_shares(self, tmp_path):
        """Counted evaluations must run under tracing (step events
        snapshot their counter deltas), so a traced warm run computes
        them even when the store could answer."""
        _run("paulin", tmp_path, trace=False)
        warm = _run("paulin", tmp_path, trace=True)
        # paulin is resynthesis-free, so any metrics counter would have
        # to come from the (forbidden) traced top-level context.
        assert warm.telemetry.store_hits.get("persistent.metrics", 0) == 0
        assert warm.telemetry.store_misses.get("run.metrics", 0) == 0


class TestObjectiveSeparation:
    def test_area_and_power_runs_do_not_collide(self, tmp_path):
        """Warm-starting a power run from an area run's store is safe."""
        baseline = _run("test1", None, objective="area")
        _run("test1", tmp_path, objective="power")
        area_warm = _run("test1", tmp_path, objective="area")
        assert _identity(area_warm) == _identity(baseline)


@pytest.mark.slow
class TestSecondBenchmark:
    def test_paulin_cold_vs_warm(self, tmp_path):
        cold = _run("paulin", tmp_path)
        warm = _run("paulin", tmp_path)
        assert _identity(warm) == _identity(cold)
        assert warm.trace_events == cold.trace_events
