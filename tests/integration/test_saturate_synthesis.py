"""End-to-end: saturation-grown designs synthesize and verify.

The acceptance bar for move-A rewrite saturation
(:mod:`repro.synthesis.saturate`): variants it registers flow through
library characterization into move-A pricing, and whatever the search
then selects still passes the differential verification oracle against
the *original* DFG semantics.
"""

from repro.power import speech_traces
from repro.synthesis import synthesize
from repro.synthesis.context import SynthesisConfig
from repro.synthesis.saturate import saturate_design
from repro.verify.oracle import verify_solution

from tests.designs import make_butterfly_design


def _small_config() -> SynthesisConfig:
    return SynthesisConfig(
        max_moves=6,
        max_passes=2,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
        n_workers=1,
    )


def test_saturated_design_synthesizes_and_verifies():
    design = make_butterfly_design()
    added = saturate_design(design)
    assert added > 0, "butterfly should admit saturated variants"
    design.check_hierarchy()

    traces = speech_traces(design.top, n=24, seed=3)
    result = synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=_small_config(),
        n_samples=24,
    )
    assert result.metrics.feasible
    outcome = verify_solution(result.design, result.solution, sim=result.sim)
    assert outcome.ok, f"oracle rejected saturated synthesis: {outcome}"


def test_saturation_keeps_baseline_verifiable():
    # Same flow without saturation: pins that the oracle pass above is
    # not vacuous (both runs go through identical checking).
    design = make_butterfly_design()
    traces = speech_traces(design.top, n=24, seed=3)
    result = synthesize(
        design,
        laxity_factor=2.2,
        objective="power",
        traces=traces,
        config=_small_config(),
        n_samples=24,
    )
    outcome = verify_solution(result.design, result.solution, sim=result.sim)
    assert outcome.ok
