"""Integration tests for portfolio search and non-default policies.

The portfolio's headline guarantee is structural: member 0 of
generation 1 runs the unmodified default policy on a cold incumbent
slate, so the portfolio winner can never price worse than the plain
single-search baseline.  These tests run the real engine end to end on
a small benchmark to hold that line, exercise the serial and pooled
execution paths, and pin the ``policy`` run_start trace field.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench_suite import get_benchmark
from repro.search import portfolio_synthesize
from repro.synthesis import SynthesisConfig, synthesize

SAMPLING_NS = 400.0
N_SAMPLES = 8


def _config(**overrides) -> SynthesisConfig:
    base = SynthesisConfig(
        max_passes=2,
        max_moves=6,
        max_ab_targets=4,
        max_share_pairs=8,
        max_split_candidates=4,
        n_clocks=2,
        resynth_passes=1,
        resynth_moves=4,
    )
    return dataclasses.replace(base, **overrides)


def _baseline_cost() -> float:
    result = synthesize(
        get_benchmark("paulin"),
        sampling_ns=SAMPLING_NS,
        objective="power",
        config=_config(),
        n_samples=N_SAMPLES,
    )
    return result.metrics.objective_value(result.objective)


@pytest.fixture(scope="module")
def baseline_cost() -> float:
    return _baseline_cost()


class TestPortfolio:
    def test_serial_portfolio_never_worse_than_baseline(self, baseline_cost):
        outcome = portfolio_synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(n_workers=1),
            n_samples=N_SAMPLES,
            n_members=3,
            generations=2,
        )
        assert outcome.cost <= baseline_cost
        # Member 0 of generation 0 is the unmodified default search on a
        # cold slate — it must reproduce the baseline exactly.
        anchor = outcome.members[0]
        assert (anchor.generation, anchor.member) == (0, 0)
        assert anchor.policy == "default"
        assert anchor.cost == baseline_cost
        assert outcome.winner is not None
        assert outcome.winner.cost == outcome.cost
        assert len(outcome.members) == 6
        assert outcome.generations == 2

    def test_pooled_portfolio_never_worse_than_baseline(self, baseline_cost):
        outcome = portfolio_synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(n_workers=2),
            n_samples=N_SAMPLES,
            n_members=2,
            generations=2,
        )
        assert outcome.cost <= baseline_cost
        assert outcome.members[0].cost == baseline_cost

    def test_single_member_single_generation_is_the_baseline(
        self, baseline_cost
    ):
        outcome = portfolio_synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(n_workers=1),
            n_samples=N_SAMPLES,
            n_members=1,
            generations=1,
        )
        assert outcome.cost == baseline_cost
        assert [m.policy for m in outcome.members] == ["default"]

    def test_rejects_invalid_shapes(self):
        with pytest.raises(ValueError, match="n_members"):
            portfolio_synthesize(
                get_benchmark("paulin"), sampling_ns=SAMPLING_NS, n_members=0
            )
        with pytest.raises(ValueError, match="generations"):
            portfolio_synthesize(
                get_benchmark("paulin"), sampling_ns=SAMPLING_NS,
                generations=0,
            )
        with pytest.raises(ValueError, match="sampling_ns"):
            portfolio_synthesize(get_benchmark("paulin"))


class TestPolicyRuns:
    @pytest.mark.parametrize("policy", ["share-first", "greedy", "priors"])
    def test_biased_policies_produce_feasible_results(self, policy):
        result = synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(search_policy=policy),
            n_samples=N_SAMPLES,
        )
        assert result.metrics.objective_value(result.objective) > 0
        assert result.solution.schedule().length \
            <= result.solution.deadline_cycles

    def test_run_start_carries_nondefault_policy_name(self):
        result = synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(search_policy="greedy", trace=True,
                           trace_timings=False),
            n_samples=N_SAMPLES,
        )
        run_start = result.trace_events[0]
        assert run_start["k"] == "run_start"
        assert run_start["policy"] == "greedy"

    def test_default_policy_trace_has_no_policy_field(self):
        result = synthesize(
            get_benchmark("paulin"),
            sampling_ns=SAMPLING_NS,
            objective="power",
            config=_config(trace=True, trace_timings=False),
            n_samples=N_SAMPLES,
        )
        assert "policy" not in result.trace_events[0]
