"""Documentation/code synchronization checks.

Docs rot in three ways this module guards against:

1. a CLI invocation shown in README/docs stops parsing (flag renamed or
   removed) — every ``python -m repro``/``repro-trace`` command found in
   a fenced code block is run through the real argument parsers;
2. the README's examples table and ``examples/`` drift apart;
3. a relative markdown link breaks — the same check
   ``tools/check_markdown_links.py`` runs in CI.

The slow tier additionally *executes* every example script end to end.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(ROOT / "tools"))

from check_markdown_links import broken_links, markdown_files  # noqa: E402

DOC_FILES = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]


def _fenced_blocks(text: str) -> list[str]:
    return re.findall(r"```(?:\w+)?\n(.*?)```", text, flags=re.DOTALL)


def _command_lines() -> list[tuple[str, str]]:
    """(source file, command) for every repro invocation in the docs."""
    commands: list[tuple[str, str]] = []
    for doc in DOC_FILES:
        for block in _fenced_blocks(doc.read_text()):
            # Join backslash continuations, drop trailing comments.
            joined = re.sub(r"\\\n\s*", " ", block)
            for line in joined.splitlines():
                line = line.split(" #", 1)[0].strip()
                if line.startswith("#") or not line:
                    continue
                if re.match(r"python -m repro(\.trace)?\b|repro-trace\b", line):
                    commands.append((doc.name, line))
    return commands


def test_docs_show_at_least_the_core_invocations():
    lines = [cmd for _doc, cmd in _command_lines()]
    assert any("synth" in line and "--trace" in line for line in lines)
    assert any(line.startswith(("repro-trace", "python -m repro.trace"))
               for line in lines)


@pytest.mark.parametrize(
    "doc,command", _command_lines(), ids=lambda v: str(v)[:60]
)
def test_documented_cli_invocations_parse(doc, command):
    from repro.cli import build_parser as repro_parser
    from repro.trace.cli import build_parser as trace_parser

    argv = shlex.split(command)
    if argv[:3] == ["python", "-m", "repro.trace"]:
        parser, args = trace_parser(), argv[3:]
    elif argv[0] == "repro-trace":
        parser, args = trace_parser(), argv[1:]
    elif argv[:3] == ["python", "-m", "repro"]:
        parser, args = repro_parser(), argv[3:]
    else:
        pytest.fail(f"unrecognized command shape in {doc}: {command}")
    try:
        parser.parse_args(args)
    except SystemExit as exc:  # argparse reports errors via sys.exit
        pytest.fail(
            f"{doc} documents an invocation the CLI rejects "
            f"(exit {exc.code}): {command}"
        )


def test_readme_examples_table_matches_examples_dir():
    readme = (ROOT / "README.md").read_text()
    documented = set(re.findall(r"`([a-z0-9_]+\.py)`", readme))
    on_disk = {p.name for p in (ROOT / "examples").glob("*.py")}
    assert on_disk <= documented, (
        f"examples not mentioned in README: {sorted(on_disk - documented)}"
    )
    # Every script the README names must exist somewhere in the repo
    # (examples/, benchmarks/, or the root).
    phantoms = [
        name for name in sorted(documented)
        if not any((ROOT / d / name).exists()
                   for d in ("examples", "benchmarks", "."))
    ]
    assert not phantoms, f"README references nonexistent scripts: {phantoms}"


def test_markdown_links_resolve():
    assert markdown_files(ROOT), "link checker found no markdown files"
    problems = broken_links(ROOT)
    assert not problems, "broken markdown links:\n  " + "\n  ".join(problems)


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in (ROOT / "examples").glob("*.py")),
)
def test_examples_run_end_to_end(script, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(ROOT / "examples" / script)],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, (
        f"{script} failed:\n{proc.stdout[-2000:]}\n{proc.stderr[-2000:]}"
    )


# ----------------------------------------------------------------------
# Service docs (docs/SERVICE.md) ↔ service CLI surface
# ----------------------------------------------------------------------

SERVICE_DOC = ROOT / "docs" / "SERVICE.md"


def _subcommand_option_strings(name: str) -> list[str]:
    """Every option string of one repro subcommand (--help excluded)."""
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action for action in parser._actions
        if isinstance(action, argparse._SubParsersAction)
    )
    options = []
    for action in subparsers.choices[name]._actions:
        options.extend(
            opt for opt in action.option_strings
            if opt not in ("-h", "--help")
        )
    return options


@pytest.mark.parametrize("subcommand", ["serve", "submit", "status"])
def test_service_doc_covers_every_cli_flag(subcommand):
    """docs/SERVICE.md must document the full serve/submit/status surface.

    A flag added to the parser without a mention in the operator guide
    (or a doc describing a removed flag) fails here.
    """
    text = SERVICE_DOC.read_text()
    missing = [
        opt for opt in _subcommand_option_strings(subcommand)
        if f"`{opt}" not in text
    ]
    assert not missing, (
        f"docs/SERVICE.md does not document repro {subcommand} "
        f"flag(s): {missing}"
    )


def test_service_doc_json_examples_are_valid_json():
    """Every ```json block in the service guide must parse."""
    import json

    blocks = re.findall(
        r"```json\n(.*?)```", SERVICE_DOC.read_text(), flags=re.DOTALL
    )
    assert blocks, "docs/SERVICE.md shows no JSON examples"
    for block in blocks:
        try:
            json.loads(block)
        except json.JSONDecodeError as exc:
            pytest.fail(
                f"invalid JSON example in docs/SERVICE.md: {exc}\n{block}"
            )


def test_service_doc_names_every_endpoint():
    """The route table in the guide matches the server's router."""
    text = SERVICE_DOC.read_text()
    for endpoint in ("/healthz", "/stats", "/jobs",
                     "/jobs/<id>", "/jobs/<id>/result", "/jobs/<id>/trace"):
        assert endpoint in text, (
            f"docs/SERVICE.md does not document endpoint {endpoint}"
        )


@pytest.mark.slow
def test_documented_serve_submit_status_flow_runs(tmp_path):
    """Execute the guide's serve → submit → status flow for real."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--workers", "2", "--cache-dir", str(tmp_path / "svc")],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        ready = server.stdout.readline()
        match = re.search(r"http://\S+", ready)
        assert match, f"no listening line from repro serve: {ready!r}"
        url = match.group(0)

        def run(*args):
            return subprocess.run(
                [sys.executable, "-m", "repro", *args],
                capture_output=True, text=True, env=env, timeout=300,
            )

        submit = run("submit", "--url", url, "--gen-seed", "5",
                     "--laxity", "2.0", "--samples", "16",
                     "--wait", "--timeout", "240")
        assert submit.returncode == 0, submit.stderr
        job_id = submit.stdout.split()[1].rstrip(":")

        status = run("status", "--url", url, job_id,
                     "--result", str(tmp_path / "result.json"))
        assert status.returncode == 0, status.stderr
        assert "done" in status.stdout
        assert (tmp_path / "result.json").exists()

        overview = run("status", "--url", url)
        assert overview.returncode == 0, overview.stderr
        assert "synth_runs: 1" in overview.stdout
    finally:
        server.terminate()
        try:
            server.wait(timeout=30)
        except subprocess.TimeoutExpired:
            server.kill()
