"""End-to-end pipeline tests: design → synthesis → netlist + FSM."""

import pytest

from repro.bench_suite import get_benchmark
from repro.rtl import ComponentKind, emit_controller, emit_netlist
from repro.synthesis import SynthesisConfig, synthesize

QUICK = SynthesisConfig(max_moves=6, max_passes=2, n_clocks=1)


@pytest.fixture(scope="module")
def result():
    design = get_benchmark("test1")
    return synthesize(design, laxity_factor=2.2, objective="area", config=QUICK)


class TestPipeline:
    def test_solution_consistent(self, result):
        result.solution.check_invariants()
        assert result.metrics.feasible

    def test_throughput_met(self, result):
        length = result.solution.schedule().length
        assert length * result.clk_ns <= result.sampling_ns + 1e-6

    def test_netlist_emission(self, result):
        netlist = result.netlist()
        text = emit_netlist(netlist)
        assert text.startswith("module")
        assert text.rstrip().endswith("endmodule")
        # Every non-port component is instantiated in the text.
        for comp in netlist.components():
            if comp.kind != ComponentKind.PORT:
                assert comp.comp_id in text

    def test_controller_emission(self, result):
        fsm = result.controller()
        text = emit_controller(fsm)
        assert f"states {fsm.n_states}" in text
        assert fsm.n_states == max(result.solution.schedule().length, 1)

    def test_every_module_instance_has_behavior_profile(self, result):
        for inst in result.solution.instances.values():
            if not inst.is_module:
                continue
            for group in result.solution.executions[inst.inst_id]:
                (node_id,) = group
                behavior = result.solution.dfg.node(node_id).behavior
                assert inst.module.supports(behavior)


class TestAllBenchmarksSynthesize:
    @pytest.mark.parametrize("name", ["paulin", "lat", "test1"])
    def test_benchmark_synthesizes(self, name):
        design = get_benchmark(name)
        result = synthesize(
            design, laxity_factor=2.5, objective="area", config=QUICK
        )
        assert result.metrics.feasible
        result.solution.check_invariants()
