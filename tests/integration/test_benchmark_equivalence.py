"""Cross-benchmark functional equivalence checks.

For every benchmark: the hierarchical simulation, the flattened
simulation, and every behavior-variant choice must produce identical
primary-output streams — the bedrock correctness property behind the
whole flattened-vs-hierarchical comparison.
"""

import numpy as np
import pytest

from repro.bench_suite import BENCHMARKS, get_benchmark
from repro.dfg import flatten, hierarchize, validate_design
from repro.power import simulate_dfg, simulate_subgraph, white_traces


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
class TestHierFlatEquivalence:
    def test_outputs_identical(self, name):
        design = get_benchmark(name)
        top = design.top
        traces = white_traces(top, n=24, seed=11)
        streams = [traces[n] for n in top.inputs]
        sim_h = simulate_subgraph(design, top, streams)
        flat = flatten(design)
        sim_f = simulate_dfg(flat, traces)
        for out in top.outputs:
            sig_h = top.in_edges(out)[0].signal
            sig_f = flat.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_h.stream((), sig_h),
                sim_f.stream((), sig_f),
                err_msg=f"{name}: output {out} differs hier vs flat",
            )


class TestVariantEquivalence:
    def test_dot3_variants_agree(self):
        """test1's anisomorphic dot3 variants compute the same product."""
        design = get_benchmark("test1")
        top = design.top
        traces = white_traces(top, n=24, seed=5)
        streams = [traces[n] for n in top.inputs]

        def choose_variant(variant_name):
            def choose(behavior):
                if behavior == "dot3":
                    return design.dfg(variant_name)
                return design.default_variant(behavior)

            return choose

        sim_chain = simulate_subgraph(
            design, top, streams, choose=choose_variant("dot3_chain")
        )
        sim_tree = simulate_subgraph(
            design, top, streams, choose=choose_variant("dot3_tree")
        )
        for out in top.outputs:
            sig = top.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_chain.stream((), sig), sim_tree.stream((), sig)
            )


@pytest.mark.parametrize("name", ["dct", "avenhaus_cascade", "hier_paulin"])
class TestHierarchizeEquivalence:
    def test_rediscovered_hierarchy_equivalent(self, name):
        flat = flatten(get_benchmark(name))
        derived = hierarchize(flat, max_cluster_size=6)
        validate_design(derived)
        reflat = flatten(derived)
        traces = white_traces(flat, n=16, seed=9)
        sim_o = simulate_dfg(flat, traces)
        sim_d = simulate_dfg(reflat, traces)
        for out in flat.outputs:
            sig_o = flat.in_edges(out)[0].signal
            sig_d = reflat.in_edges(out)[0].signal
            np.testing.assert_array_equal(
                sim_o.stream((), sig_o), sim_d.stream((), sig_d)
            )
