"""Golden regression snapshots of the synthesis cost metrics.

Each golden pins the (area, power, clock, Vdd) quadruple a full
``synthesize()`` run produces for one benchmark under a fixed stimulus
seed and reduced-effort configuration, for both objectives.  The runs
are deterministic, so any drift means a synthesis change moved the
costs — caught here at PR time instead of in the benchmark sweeps.

When a change *intentionally* moves the numbers, regenerate with::

    PYTHONPATH=src python -m pytest tests/integration/test_golden.py \
        --update-goldens

and commit the refreshed JSON files under ``tests/integration/goldens/``.
"""

import json
from pathlib import Path

import pytest

from repro.bench_suite import example3_dfg1, get_benchmark
from repro.dfg import Design
from repro.power import speech_traces
from repro.reporting import quick_config
from repro.synthesis import synthesize

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Floats are compared to a tight relative tolerance: the flow is
#: deterministic, so the slack only absorbs cross-platform libm noise.
REL_TOL = 1e-9

TRACE_SEED = 2026
TRACE_SAMPLES = 24
LAXITY = 1.8


def _example3_design() -> Design:
    # example3 ships as a bare DFG (the Table 2 demonstration pair);
    # wrap DFG1 as a single-behavior design so synthesize() accepts it.
    design = Design("example3")
    design.add_dfg(example3_dfg1(), top=True)
    return design


CASES = {
    "test1": lambda: get_benchmark("test1"),
    "paulin": lambda: get_benchmark("paulin"),
    "example3": _example3_design,
}


def _snapshot(name: str) -> dict:
    snapshot: dict = {}
    for objective in ("area", "power"):
        design = CASES[name]()
        traces = speech_traces(design.top, n=TRACE_SAMPLES, seed=TRACE_SEED)
        result = synthesize(
            design,
            laxity_factor=LAXITY,
            objective=objective,
            traces=traces,
            config=quick_config(),
        )
        snapshot[objective] = {
            "area": result.area,
            "power": result.power,
            "clock_ns": result.clk_ns,
            "vdd": result.vdd,
        }
    return snapshot


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_costs(name, update_goldens):
    observed = _snapshot(name)
    path = GOLDEN_DIR / f"{name}.json"
    if update_goldens:
        path.parent.mkdir(exist_ok=True)
        path.write_text(json.dumps(observed, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden updated: {path}")
    assert path.exists(), (
        f"missing golden {path}; generate it with pytest --update-goldens"
    )
    expected = json.loads(path.read_text())
    assert set(observed) == set(expected)
    for objective, metrics in expected.items():
        assert set(observed[objective]) == set(metrics)
        for key, want in metrics.items():
            got = observed[objective][key]
            assert got == pytest.approx(want, rel=REL_TOL), (
                f"{name}/{objective}/{key}: golden {want}, observed {got}"
            )
