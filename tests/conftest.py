"""Shared fixtures: small designs, libraries and simulated traces."""

from __future__ import annotations

import pytest

from repro.dfg import Design, GraphBuilder
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces


def make_butterfly_design() -> Design:
    """A two-level design: two butterflies feeding a multiply/add tree."""
    b = GraphBuilder("butterfly")
    a, c = b.inputs("a", "b")
    b.output("o0", b.add(a, c, name="badd"))
    b.output("o1", b.sub(a, c, name="bsub"))
    butterfly = b.build()

    t = GraphBuilder("bf_top")
    x, y, z, w = t.inputs("x", "y", "z", "w")
    h1 = t.hier("butterfly", x, y, n_outputs=2, name="h1")
    h2 = t.hier("butterfly", z, w, n_outputs=2, name="h2")
    m1 = t.mult(h1[0], h2[0], name="m1")
    m2 = t.mult(h1[1], h2[1], name="m2")
    t.output("out", t.add(m1, m2, name="s1"))

    design = Design("bf_design")
    design.add_dfg(butterfly)
    design.add_dfg(t.build(), top=True)
    return design


def make_flat_dfg():
    """A small flat DFG: (x*y + z) and (x - z)."""
    b = GraphBuilder("small_flat")
    x, y, z = b.inputs("x", "y", "z")
    m = b.mult(x, y, name="m1")
    s = b.add(m, z, name="a1")
    d = b.sub(x, z, name="s1")
    b.output("o0", s)
    b.output("o1", d)
    return b.build()


@pytest.fixture
def butterfly_design() -> Design:
    return make_butterfly_design()


@pytest.fixture
def flat_dfg():
    return make_flat_dfg()


@pytest.fixture
def flat_design(flat_dfg) -> Design:
    design = Design("small_flat_design")
    design.add_dfg(flat_dfg, top=True)
    return design


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def flat_sim(flat_design):
    top = flat_design.top
    traces = speech_traces(top, n=32, seed=7)
    return simulate_subgraph(flat_design, top, [traces[n] for n in top.inputs])


@pytest.fixture
def butterfly_sim(butterfly_design):
    top = butterfly_design.top
    traces = speech_traces(top, n=32, seed=7)
    return simulate_subgraph(butterfly_design, top, [traces[n] for n in top.inputs])
