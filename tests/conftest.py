"""Shared fixtures: small designs, libraries and simulated traces.

The design constructors themselves live in :mod:`tests.designs` so that
hypothesis strategies, golden tests and the fuzzer can call them as
plain functions; this file only wraps them as fixtures.
"""

from __future__ import annotations

import pytest

from repro.dfg import Design
from repro.library import default_library

from tests.designs import (
    make_butterfly_design,
    make_flat_design,
    make_flat_dfg,
    sim_for,
)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden regression fixtures under "
        "tests/integration/goldens/ instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    return request.config.getoption("--update-goldens")


@pytest.fixture
def butterfly_design() -> Design:
    return make_butterfly_design()


@pytest.fixture
def flat_dfg():
    return make_flat_dfg()


@pytest.fixture
def flat_design() -> Design:
    return make_flat_design()


@pytest.fixture
def library():
    return default_library()


@pytest.fixture
def flat_sim(flat_design):
    return sim_for(flat_design)


@pytest.fixture
def butterfly_sim(butterfly_design):
    return sim_for(butterfly_design)
