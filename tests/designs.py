"""Shared design constructors for the test suite.

Every design that more than one test module needs lives here exactly
once; ``tests/conftest.py`` wraps them in fixtures and individual test
files import the constructors directly when they need a fresh
(non-fixture) instance.  Keeping them importable as plain functions —
not only as fixtures — is what lets hypothesis strategies, golden tests
and the fuzzer reuse them.
"""

from __future__ import annotations

from repro.dfg import DFG, Design, GraphBuilder
from repro.power import SimTrace, simulate_subgraph, speech_traces

__all__ = [
    "chain_dfg",
    "diamond_dfg",
    "make_butterfly_design",
    "make_flat_design",
    "make_flat_dfg",
    "sim_for",
]


def make_butterfly_design() -> Design:
    """A two-level design: two butterflies feeding a multiply/add tree."""
    b = GraphBuilder("butterfly")
    a, c = b.inputs("a", "b")
    b.output("o0", b.add(a, c, name="badd"))
    b.output("o1", b.sub(a, c, name="bsub"))
    butterfly = b.build()

    t = GraphBuilder("bf_top")
    x, y, z, w = t.inputs("x", "y", "z", "w")
    h1 = t.hier("butterfly", x, y, n_outputs=2, name="h1")
    h2 = t.hier("butterfly", z, w, n_outputs=2, name="h2")
    m1 = t.mult(h1[0], h2[0], name="m1")
    m2 = t.mult(h1[1], h2[1], name="m2")
    t.output("out", t.add(m1, m2, name="s1"))

    design = Design("bf_design")
    design.add_dfg(butterfly)
    design.add_dfg(t.build(), top=True)
    return design


def make_flat_dfg() -> DFG:
    """A small flat DFG: (x*y + z) and (x - z)."""
    b = GraphBuilder("small_flat")
    x, y, z = b.inputs("x", "y", "z")
    m = b.mult(x, y, name="m1")
    s = b.add(m, z, name="a1")
    d = b.sub(x, z, name="s1")
    b.output("o0", s)
    b.output("o1", d)
    return b.build()


def make_flat_design() -> Design:
    design = Design("small_flat_design")
    design.add_dfg(make_flat_dfg(), top=True)
    return design


def diamond_dfg() -> DFG:
    """Two parallel multiplies joined by an add."""
    b = GraphBuilder("t")
    x, y, z = b.inputs("x", "y", "z")
    m1 = b.mult(x, y, name="m1")
    m2 = b.mult(y, z, name="m2")
    b.output("o", b.add(m1, m2, name="a1"))
    return b.build()


def chain_dfg() -> DFG:
    """A multiply feeding an add (the minimal serial chain)."""
    b = GraphBuilder("t")
    x, y = b.inputs("x", "y")
    m = b.mult(x, y, name="m")
    a = b.add(m, y, name="a")
    b.output("o", a)
    return b.build()


def sim_for(design: Design, n: int = 32, seed: int = 7) -> SimTrace:
    """Simulated speech-trace activity for *design*'s top DFG."""
    top = design.top
    traces = speech_traces(top, n=n, seed=seed)
    return simulate_subgraph(design, top, [traces[name] for name in top.inputs])
