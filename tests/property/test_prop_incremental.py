"""Property test: delta-priced cost == full cost for EVERY candidate.

Reuses the move fuzzer's random-design generator (``benchmarks/
fuzz_moves.py``) so the incremental evaluator faces the same design
distribution the differential RTL oracle is hammered with: random
hierarchies, both objectives, every move family.  For each round seed
the test prices every generated candidate twice — once by delta against
the current solution's breakdown, once from scratch — and requires the
two :class:`~repro.synthesis.costs.Metrics` to be *equal*, not close.

Also checks the pruning lower bound (`_min_schedule_length` must never
exceed the real schedule length) and that pruning never changes the
winner `_best` picks.
"""

import random
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "benchmarks"))

from fuzz_moves import random_design  # noqa: E402

from repro.library import default_library  # noqa: E402
from repro.power import simulate_subgraph, white_traces  # noqa: E402
from repro.synthesis.context import SynthesisConfig, SynthesisEnv  # noqa: E402
from repro.synthesis.improve import _best  # noqa: E402
from repro.synthesis.incremental import evaluate_solution  # noqa: E402
from repro.synthesis.initial import initial_solution  # noqa: E402
from repro.synthesis.moves import (  # noqa: E402
    _min_schedule_length,
    prune_candidates,
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)

ROUND_SEEDS = (0, 1, 2, 5)


def _round(seed):
    """Deterministic (env, solution, sim, candidates) for one round seed."""
    rng = random.Random(seed)
    design = random_design(rng)
    library = default_library()
    top = design.top
    traces = white_traces(top, n=12, seed=seed)
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    config = SynthesisConfig(max_share_pairs=8, max_split_candidates=4)
    objective = rng.choice(("area", "power"))
    env = SynthesisEnv(design, library, objective, config)
    solution = initial_solution(env, top, sim, 10.0, 5.0, 2000.0)
    candidates = []
    candidates += type_a_b_candidates(env, solution, sim, frozenset())
    candidates += sharing_candidates(env, solution, sim, frozenset())
    candidates += splitting_candidates(env, solution, sim, frozenset())
    return env, solution, sim, candidates


@pytest.mark.parametrize("seed", ROUND_SEEDS)
def test_delta_equals_full_for_every_candidate(seed):
    env, solution, sim, candidates = _round(seed)
    ctx = env.context(sim)
    _m, base, _r, _t = evaluate_solution(ctx, solution, None)
    assert candidates, "fuzz round generated no candidates"
    for cand in candidates:
        delta, _b, reused, terms = evaluate_solution(ctx, cand.solution, base)
        full, _b2, _r2, _t2 = evaluate_solution(ctx, cand.solution, None)
        assert delta == full, f"seed {seed}: {cand.description}"
        if cand.footprint is None:
            # Global moves are never delta-priced by the engine; pricing
            # them against a base here must still be exact (it was).
            continue
        assert 0 <= reused <= terms


@pytest.mark.parametrize("seed", ROUND_SEEDS)
def test_schedule_lower_bound_is_sound(seed):
    _env, solution, _sim, candidates = _round(seed)
    for sol in [solution] + [c.solution for c in candidates]:
        assert _min_schedule_length(sol) <= sol.schedule().length


@pytest.mark.parametrize("seed", ROUND_SEEDS)
def test_pruning_preserves_the_winner(seed):
    env, solution, sim, candidates = _round(seed)
    if len(candidates) < 2:
        pytest.skip("nothing to prune")
    survivors = prune_candidates(env, solution, list(candidates))
    assert len(survivors) <= len(candidates)

    def winner(cands):
        ctx = env.context(sim)
        best = _best(ctx, cands)
        return None if best is None else (
            best.candidate.description, best.cost_after
        )

    assert winner(candidates) == winner(survivors)
