"""Property tests for RTL embedding over random netlists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.library import default_library
from repro.rtl import ComponentKind, DatapathNetlist, embed_netlists, naive_union

CELLS = ["add1", "mult1", "sub1", "alu1"]


@st.composite
def random_netlist(draw, name: str):
    n = DatapathNetlist(name)
    n_in = draw(st.integers(1, 3))
    for i in range(n_in):
        n.add_component(f"in{i}", ComponentKind.PORT, "in")
    n.add_component("out0", ComponentKind.PORT, "out")

    n_fus = draw(st.integers(1, 5))
    for i in range(n_fus):
        n.add_component(
            f"fu{i}", ComponentKind.FUNCTIONAL, draw(st.sampled_from(CELLS))
        )
    n_regs = draw(st.integers(1, 6))
    for i in range(n_regs):
        n.add_component(f"r{i}", ComponentKind.REGISTER, "reg1")

    # Random wiring: registers feed FU ports; FUs feed registers/out.
    for i in range(n_fus):
        for port in range(2):
            src = draw(st.integers(0, n_regs + n_in - 1))
            if src < n_regs:
                n.connect(f"r{src}", 0, f"fu{i}", port)
            else:
                n.connect(f"in{src - n_regs}", 0, f"fu{i}", port)
        dst = draw(st.integers(0, n_regs - 1))
        n.connect(f"fu{i}", 0, f"r{dst}", 0)
    n.connect(f"r{draw(st.integers(0, n_regs - 1))}", 0, "out0", 0)
    for i in range(n_in):
        n.connect(f"in{i}", 0, f"r{draw(st.integers(0, n_regs - 1))}", 0)
    return n


@given(random_netlist("a"), random_netlist("b"))
@settings(max_examples=30, deadline=None)
def test_merged_area_between_max_and_union(a, b):
    library = default_library()
    merged = embed_netlists(a, b, "m")
    union = naive_union(a, b, "u")
    assert merged.netlist.area(library) <= union.netlist.area(library) + 1e-9


@given(random_netlist("a"), random_netlist("b"))
@settings(max_examples=30, deadline=None)
def test_all_b_components_mapped_within_class(a, b):
    merged = embed_netlists(a, b, "m")
    for comp in b.components():
        target_id = merged.map_b[comp.comp_id]
        target = merged.netlist.component(target_id)
        if comp.kind == ComponentKind.FUNCTIONAL:
            assert target.cell == comp.cell
        else:
            assert target.kind == comp.kind


@given(random_netlist("a"), random_netlist("b"))
@settings(max_examples=30, deadline=None)
def test_all_connections_preserved(a, b):
    """Every original wire of A and B exists in the merged netlist."""
    merged = embed_netlists(a, b, "m")
    merged_conns = {
        (c.src, c.src_port, c.dst, c.dst_port)
        for c in merged.netlist.connections()
    }
    for conn in a.connections():
        assert (conn.src, conn.src_port, conn.dst, conn.dst_port) in merged_conns
    for conn in b.connections():
        mapped = (
            merged.map_b[conn.src],
            conn.src_port,
            merged.map_b[conn.dst],
            conn.dst_port,
        )
        assert mapped in merged_conns


@given(random_netlist("a"))
@settings(max_examples=20, deadline=None)
def test_self_embedding_adds_nothing(a):
    """Embedding a netlist into (a copy of) itself must share everything."""
    library = default_library()
    clone = a.copy("a2")
    merged = embed_netlists(a, clone, "m")
    assert merged.netlist.area(library) <= a.area(library) + 1e-9
