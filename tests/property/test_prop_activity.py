"""Property tests for switching-activity extraction."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.power import (
    batch_activities,
    hamming_distance,
    interleaved_activity,
    operand_activity,
    reset_activity_caches,
    stream_activity,
)

samples = st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1)
streams = st.lists(samples, min_size=2, max_size=40).map(
    lambda v: np.array(v, dtype=np.int64)
)


@given(streams)
def test_activity_bounded(stream):
    assert 0.0 <= stream_activity(stream, 16) <= 1.0


@given(streams)
def test_hamming_symmetric(stream):
    a, b = stream[:-1], stream[1:]
    np.testing.assert_array_equal(
        hamming_distance(a, b, 16), hamming_distance(b, a, 16)
    )


@given(streams)
def test_hamming_identity(stream):
    assert np.all(hamming_distance(stream, stream, 16) == 0)


@given(st.lists(streams, min_size=1, max_size=4))
@settings(max_examples=50)
def test_interleaved_bounded(stream_list):
    n = min(len(s) for s in stream_list)
    trimmed = [s[:n] for s in stream_list]
    assert 0.0 <= interleaved_activity(trimmed, 16) <= 1.0


@given(streams)
def test_reversal_preserves_activity(stream):
    assert stream_activity(stream, 16) == stream_activity(stream[::-1], 16)


@given(st.lists(streams, min_size=1, max_size=3), st.integers(1, 3))
@settings(max_examples=50)
def test_operand_activity_bounded(stream_list, arity):
    n = min(len(s) for s in stream_list)
    ops = [[s[:n]] * arity for s in stream_list]
    assert 0.0 <= operand_activity(ops, 16) <= 1.0


@given(
    st.lists(st.lists(streams, min_size=0, max_size=3), min_size=0, max_size=5),
    st.sampled_from([4, 8, 12, 16]),
)
@settings(max_examples=50)
def test_batch_matches_scalar_bitwise(stream_lists, width):
    """One batched call returns exactly what per-request scalar calls
    return — bit-identical floats, any mix of widths and arities."""
    trimmed = []
    for group in stream_lists:
        n = min((len(s) for s in group), default=0)
        trimmed.append(tuple(s[:n] for s in group))
    requests = [(group, width) for group in trimmed]
    reset_activity_caches()
    batched = batch_activities(requests)
    reset_activity_caches()
    scalar = [
        interleaved_activity(list(group), w) for group, w in requests
    ]
    reset_activity_caches()
    assert batched == scalar


@given(streams, st.integers(2, 4))
def test_self_interleave_never_raises_activity(stream, k):
    """Interleaving copies of one stream adds zero toggles, so the
    per-access activity can only drop."""
    mixed = interleaved_activity([stream] * k, 16)
    assert mixed <= stream_activity(stream, 16) + 1e-9
