"""Property tests: the differential oracle on random designs and moves.

Two guarantees, checked on randomly generated designs:

* **soundness of the flow** — every conflict-free architecture the move
  generators produce is equivalent to the behavior (the oracle passes);
* **sensitivity of the oracle** — merging two registers with
  overlapping lifetimes (a genuinely corrupt binding) is caught.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import Design, GraphBuilder, Operation, validate_design
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)
from repro.verify import verify_solution

BINARY_OPS = [Operation.ADD, Operation.SUB, Operation.MULT]


@st.composite
def random_design(draw) -> Design:
    n_inputs = draw(st.integers(2, 3))
    n_ops = draw(st.integers(3, 8))
    b = GraphBuilder("rand")
    wires = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    used = set()
    results = []
    for k in range(n_ops):
        op = draw(st.sampled_from(BINARY_OPS))
        lhs = wires[draw(st.integers(0, len(wires) - 1))]
        rhs = wires[draw(st.integers(0, len(wires) - 1))]
        used.update((lhs, rhs))
        wire = b.op(op, lhs, rhs, name=f"op{k}")
        wires.append(wire)
        results.append(wire)
    # validate_design rejects operations that reach no primary output
    # (the engine assumes validated graphs), so fold every dangling
    # result into the single sink.
    sink = results[-1]
    for wire in results[:-1]:
        if wire not in used:
            sink = b.add(sink, wire)
    b.output("out", sink)
    design = Design("rand_design")
    design.add_dfg(b.build(), top=True)
    validate_design(design)
    return design


def _setup(design):
    library = default_library()
    top = design.top
    traces = speech_traces(top, n=12, seed=3)
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    config = SynthesisConfig(max_share_pairs=8, max_split_candidates=4)
    env = SynthesisEnv(design, library, "area", config)
    solution = initial_solution(env, top, sim, 10.0, 5.0, 800.0)
    return env, sim, solution


def _walk(design, rng, n_steps):
    env, sim, solution = _setup(design)
    assert verify_solution(design, solution, sim=sim, shrink=False).ok

    for _step in range(n_steps):
        candidates = []
        candidates.extend(type_a_b_candidates(env, solution, sim, frozenset()))
        candidates.extend(sharing_candidates(env, solution, sim, frozenset()))
        candidates.extend(splitting_candidates(env, solution, sim, frozenset()))
        if not candidates:
            break
        solution = rng.choice(candidates).solution
        if solution.register_conflicts():
            # Conflicted bindings are priced as infeasible and never
            # committed; their RTL is not expected to be equivalent.
            continue
        result = verify_solution(design, solution, sim=sim, shrink=False)
        assert result.ok, result.counterexample.describe()


@given(random_design(), st.randoms(use_true_random=False))
@settings(max_examples=10, deadline=None)
def test_random_move_walks_stay_equivalent(design, rng):
    _walk(design, rng, 3)


@pytest.mark.fuzz
@given(random_design(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_fuzz_deep_move_walks(design, rng):
    """Nightly-only: many examples, longer walks through the move space."""
    _walk(design, rng, 8)


@given(random_design())
@settings(max_examples=10, deadline=None)
def test_conflicting_register_merges_are_caught(design):
    _env, sim, solution = _setup(design)
    registers = sorted(solution.reg_signals)
    for src in registers:
        for dst in registers:
            if src == dst:
                continue
            corrupt = solution.clone()
            regs = {r: list(s) for r, s in corrupt.reg_signals.items()}
            regs[dst].extend(regs.pop(src))
            corrupt.reg_signals = regs
            if not corrupt.register_conflicts():
                continue
            result = verify_solution(design, corrupt, sim=sim, shrink=False)
            # A lifetime clash between two *distinct* values must be
            # observable whenever the clobbered value reaches an output
            # with a distinguishing stimulus; random speech traces make
            # ties (identical values in both registers) vanishingly
            # rare, but equal-value overlaps are still correct RTL, so
            # only assert when the oracle flags it — and then require a
            # well-formed counterexample.
            if not result.ok:
                cx = result.counterexample
                assert cx.cycle >= 0
                assert cx.fault is not None or cx.output in design.top.outputs
                return
    # No conflicting merge existed (tiny schedules): nothing to check.
