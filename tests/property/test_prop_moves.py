"""Property stress test: random move sequences preserve solution sanity.

Applies randomly chosen candidates from the real move generators and
verifies after every step that the solution passes its structural
invariants, schedules, and evaluates without error — the engine's
"no matter what the optimizer does, the architecture stays coherent"
guarantee.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import Design, GraphBuilder, Operation
from repro.library import default_library
from repro.power import simulate_subgraph, speech_traces
from repro.synthesis.context import SynthesisConfig, SynthesisEnv
from repro.synthesis.initial import initial_solution
from repro.synthesis.moves import (
    sharing_candidates,
    splitting_candidates,
    type_a_b_candidates,
)

BINARY_OPS = [Operation.ADD, Operation.SUB, Operation.MULT]


@st.composite
def random_design(draw) -> Design:
    n_inputs = draw(st.integers(2, 3))
    n_ops = draw(st.integers(3, 8))
    b = GraphBuilder("rand")
    wires = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    for k in range(n_ops):
        op = draw(st.sampled_from(BINARY_OPS))
        lhs = wires[draw(st.integers(0, len(wires) - 1))]
        rhs = wires[draw(st.integers(0, len(wires) - 1))]
        wires.append(b.op(op, lhs, rhs, name=f"op{k}"))
    b.output("out", wires[-1])
    design = Design("rand_design")
    design.add_dfg(b.build(), top=True)
    return design


@given(random_design(), st.randoms(use_true_random=False))
@settings(max_examples=15, deadline=None)
def test_random_move_sequences_stay_consistent(design, rng):
    library = default_library()
    top = design.top
    traces = speech_traces(top, n=16, seed=3)
    sim = simulate_subgraph(design, top, [traces[n] for n in top.inputs])
    config = SynthesisConfig(max_share_pairs=8, max_split_candidates=4)
    env = SynthesisEnv(design, library, "area", config)
    solution = initial_solution(env, top, sim, 10.0, 5.0, 800.0)
    ctx = env.context(sim)

    for _step in range(4):
        candidates = []
        candidates.extend(type_a_b_candidates(env, solution, sim, frozenset()))
        candidates.extend(sharing_candidates(env, solution, sim, frozenset()))
        candidates.extend(splitting_candidates(env, solution, sim, frozenset()))
        if not candidates:
            break
        chosen = rng.choice(candidates)
        chosen.solution.check_invariants()
        metrics = ctx.evaluate(chosen.solution)
        assert metrics.area > 0
        assert metrics.power > 0
        solution = chosen.solution
