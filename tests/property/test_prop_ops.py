"""Property tests for bit-true operation semantics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg.ops import OP_INFO, Operation, apply_operation, wrap_to_width

widths = st.integers(min_value=4, max_value=24)
values = st.integers(min_value=-(2**40), max_value=2**40)
streams = st.lists(values, min_size=1, max_size=20).map(
    lambda v: np.array(v, dtype=np.int64)
)


@given(streams, widths)
def test_wrap_stays_in_range(stream, width):
    wrapped = wrap_to_width(stream, width)
    lo, hi = -(1 << (width - 1)), (1 << (width - 1)) - 1
    assert np.all(wrapped >= lo)
    assert np.all(wrapped <= hi)


@given(streams, widths)
def test_wrap_idempotent(stream, width):
    once = wrap_to_width(stream, width)
    np.testing.assert_array_equal(wrap_to_width(once, width), once)


@given(streams, widths)
def test_wrap_congruent_mod_2w(stream, width):
    wrapped = wrap_to_width(stream, width)
    np.testing.assert_array_equal(
        (wrapped - stream) % (1 << width), np.zeros(len(stream), dtype=np.int64)
    )


@given(st.data(), widths)
@settings(max_examples=50)
def test_commutative_ops_commute(data, width):
    n = data.draw(st.integers(min_value=1, max_value=10))
    a = np.array(data.draw(st.lists(values, min_size=n, max_size=n)))
    b = np.array(data.draw(st.lists(values, min_size=n, max_size=n)))
    for op, info in OP_INFO.items():
        if info.arity != 2 or not info.commutative:
            continue
        np.testing.assert_array_equal(
            apply_operation(op, [a, b], width),
            apply_operation(op, [b, a], width),
        )


@given(st.data(), widths)
@settings(max_examples=50)
def test_add_sub_inverse_mod_2w(data, width):
    n = data.draw(st.integers(min_value=1, max_value=10))
    a = np.array(data.draw(st.lists(values, min_size=n, max_size=n)))
    b = np.array(data.draw(st.lists(values, min_size=n, max_size=n)))
    total = apply_operation(Operation.ADD, [a, b], width)
    back = apply_operation(Operation.SUB, [total, b], width)
    np.testing.assert_array_equal(back, wrap_to_width(a, width))
