"""Writer round-trip property, driven by the seeded design generator.

For any generated design, ``parse_design(write_design(design))`` must
give back the *same graph*: identical node ids, kinds, operations,
widths, const values, port-ordered edges and input/output orderings in
every DFG — and therefore equal canonical fingerprints.  The generator
(`repro.gen`) samples the full textual grammar (hierarchy, variants,
constants, the whole operation alphabet), so this is the writer/parser
round-trip guarantee over the real input distribution, not over
hand-picked examples.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import parse_design, validate_design, write_design
from repro.dfg.canonical import canonical_fingerprint, design_fingerprint
from repro.dfg.graph import DFG
from repro.gen import GenConfig, generate_design


@st.composite
def gen_config(draw) -> GenConfig:
    """A random generator configuration spanning the knob space."""
    depth = draw(st.integers(1, 3))
    max_behaviors = draw(st.integers(0, 3))
    return dataclasses.replace(
        GenConfig(),
        hierarchy_depth=depth,
        n_behaviors=(min(1, max_behaviors), max_behaviors),
        variants_per_behavior=(1, draw(st.integers(1, 3))),
        ops_per_dfg=(2, draw(st.integers(3, 9))),
        outputs_per_dfg=(1, draw(st.integers(1, 3))),
        n_samples=4,  # stimulus is irrelevant to the round trip
    )


def _graphs_identical(a: DFG, b: DFG) -> None:
    assert a.name == b.name
    assert a.behavior == b.behavior
    assert a.inputs == b.inputs
    assert a.outputs == b.outputs
    assert sorted(n.node_id for n in a.nodes()) == sorted(
        n.node_id for n in b.nodes()
    )
    for node in a.nodes():
        other = b.node(node.node_id)
        assert node.kind == other.kind
        assert node.op == other.op
        assert node.value == other.value
        assert node.width == other.width
        assert node.behavior == other.behavior
        assert [
            (e.signal, e.dst_port) for e in a.in_edges(node.node_id)
        ] == [(e.signal, e.dst_port) for e in b.in_edges(node.node_id)]
    # graph_signature also hashes node *enumeration order*, which the
    # writer normalizes to topological order — so the round trip only
    # guarantees it up to that reordering.
    assert _order_free_signature(a) == _order_free_signature(b)


def _order_free_signature(dfg: DFG) -> tuple:
    nodes = sorted(
        (n.node_id, n.kind.value, str(n.op), n.behavior, n.value, n.width)
        for n in dfg.nodes()
    )
    edges = sorted(
        (e.src, e.src_port, e.dst, e.dst_port) for e in dfg.edges()
    )
    return (tuple(nodes), tuple(edges), tuple(dfg.inputs), tuple(dfg.outputs))


@given(seed=st.integers(0, 2**32 - 1), config=gen_config())
@settings(max_examples=60, deadline=None)
def test_parse_write_round_trip(seed, config):
    design = generate_design(seed, config).design
    reparsed = parse_design(write_design(design))
    validate_design(reparsed)

    assert reparsed.name == design.name
    assert reparsed.top_name == design.top_name
    assert sorted(reparsed.dfg_names()) == sorted(design.dfg_names())
    for name in design.dfg_names():
        _graphs_identical(design.dfg(name), reparsed.dfg(name))
        assert canonical_fingerprint(design.dfg(name)) == (
            canonical_fingerprint(reparsed.dfg(name))
        )
    assert design_fingerprint(design, design.top) == (
        design_fingerprint(reparsed, reparsed.top)
    )


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_written_text_is_reproducible(seed):
    """write(parse(write(d))) is byte-identical to write(d)."""
    design = generate_design(seed).design
    text = write_design(design)
    assert write_design(parse_design(text)) == text
