"""Property tests for hierarchy derivation on random DFGs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import (
    GraphBuilder,
    Operation,
    convex_clusters,
    flatten,
    hierarchize,
    validate_design,
)
from repro.power import simulate_dfg, white_traces

BINARY_OPS = [Operation.ADD, Operation.SUB, Operation.MULT, Operation.MIN]


@st.composite
def random_flat_dfg(draw):
    """Random DAGs with no dead code: every dangling value becomes an
    output, so the graphs pass validation before and after hierarchize."""
    n_inputs = draw(st.integers(2, 4))
    n_ops = draw(st.integers(4, 16))
    b = GraphBuilder("rand")
    wires = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    consumed: set[str] = set()
    for k in range(n_ops):
        op = draw(st.sampled_from(BINARY_OPS))
        lhs = wires[draw(st.integers(0, len(wires) - 1))]
        rhs = wires[draw(st.integers(0, len(wires) - 1))]
        consumed.update({lhs.node_id, rhs.node_id})
        wires.append(b.op(op, lhs, rhs, name=f"op{k}"))
    sinks = [w for w in wires[n_inputs:] if w.node_id not in consumed]
    for j, wire in enumerate(sinks):
        b.output(f"out{j}", wire)
    return b.build()


@given(random_flat_dfg(), st.integers(2, 6))
@settings(max_examples=25, deadline=None)
def test_clusters_partition_operations(dfg, max_size):
    clusters = convex_clusters(dfg, max_cluster_size=max_size)
    covered = sorted(n for cluster in clusters for n in cluster)
    assert covered == sorted(n.node_id for n in dfg.op_nodes())
    assert all(len(c) <= max_size for c in clusters)


@given(random_flat_dfg(), st.integers(2, 6))
@settings(max_examples=20, deadline=None)
def test_hierarchize_roundtrip_simulation(dfg, max_size):
    """The derived hierarchy is always valid and bit-identical."""
    design = hierarchize(dfg, max_cluster_size=max_size)
    validate_design(design)
    reflat = flatten(design)

    traces = white_traces(dfg, n=12, seed=0)
    sim_a = simulate_dfg(dfg, traces)
    sim_b = simulate_dfg(reflat, traces)
    for out in dfg.outputs:
        sig_a = dfg.in_edges(out)[0].signal
        sig_b = reflat.in_edges(out)[0].signal
        np.testing.assert_array_equal(
            sim_a.stream((), sig_a), sim_b.stream((), sig_b)
        )


@given(random_flat_dfg())
@settings(max_examples=20, deadline=None)
def test_hierarchize_interface_stable(dfg):
    design = hierarchize(dfg)
    assert design.top.inputs == dfg.inputs
    assert design.top.outputs == dfg.outputs
