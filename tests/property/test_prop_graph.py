"""Property tests over randomly generated DFGs.

A composite strategy builds random layered DAGs of arithmetic
operations; the properties cover topological ordering, flattening and
simulation consistency.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import (
    DFG,
    Design,
    GraphBuilder,
    Operation,
    check_dfg,
    flatten,
)
from repro.power import simulate_dfg, simulate_subgraph, white_traces

BINARY_OPS = [Operation.ADD, Operation.SUB, Operation.MULT, Operation.MIN,
              Operation.MAX]


@st.composite
def random_dfg(draw) -> DFG:
    """A random connected DAG: 2-4 inputs, 1-12 ops, every op reachable."""
    n_inputs = draw(st.integers(2, 4))
    n_ops = draw(st.integers(1, 12))
    b = GraphBuilder(f"rand{draw(st.integers(0, 10**6))}")
    wires = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    for k in range(n_ops):
        op = draw(st.sampled_from(BINARY_OPS))
        lhs = wires[draw(st.integers(0, len(wires) - 1))]
        rhs = wires[draw(st.integers(0, len(wires) - 1))]
        wires.append(b.op(op, lhs, rhs, name=f"op{k}"))
    # Last op is always an output; a couple more random taps may be too.
    b.output("out0", wires[-1])
    n_extra = draw(st.integers(0, 2))
    for j in range(n_extra):
        b.output(f"out{j + 1}", wires[draw(st.integers(n_inputs, len(wires) - 1))])
    return b.build()


@given(random_dfg())
@settings(max_examples=40, deadline=None)
def test_topo_order_respects_edges(dfg):
    order = dfg.topo_order()
    position = {nid: i for i, nid in enumerate(order)}
    for edge in dfg.edges():
        assert position[edge.src] < position[edge.dst]


@given(random_dfg())
@settings(max_examples=40, deadline=None)
def test_live_graphs_check_clean_or_report_dead_ops(dfg):
    problems = check_dfg(dfg)
    for problem in problems:
        # Random taps may leave dead ops, but no structural breakage.
        assert "does not reach" in problem


@given(random_dfg())
@settings(max_examples=25, deadline=None)
def test_hier_wrapping_roundtrips_simulation(dfg):
    """Wrapping a random DFG as a behavior and flattening it back
    preserves simulated output streams."""
    design = Design("wrap")
    sub = dfg.copy("sub_impl")
    sub.behavior = "payload"
    design.add_dfg(sub)

    top = GraphBuilder("wrap_top")
    ins = top.inputs(*[f"x{k}" for k in range(len(dfg.inputs))])
    h = top.hier("payload", *ins, n_outputs=len(dfg.outputs), name="h")
    for j in range(len(dfg.outputs)):
        top.output(f"y{j}", h[j])
    design.add_dfg(top.build(), top=True)

    traces = white_traces(design.top, n=16, seed=1)
    streams = [traces[n] for n in design.top.inputs]
    sim_h = simulate_subgraph(design, design.top, streams)

    flat = flatten(design)
    flat_traces = {n: s for n, s in zip(flat.inputs, streams)}
    sim_f = simulate_dfg(flat, flat_traces)

    for out in design.top.outputs:
        sig_h = design.top.in_edges(out)[0].signal
        sig_f = flat.in_edges(out)[0].signal
        np.testing.assert_array_equal(
            sim_h.stream((), sig_h), sim_f.stream((), sig_f)
        )
