"""Property tests for the list scheduler over random bindings."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dfg import DFG, GraphBuilder, Operation
from repro.scheduling import (
    TaskSpec,
    latest_start_times,
    schedule_tasks,
    task_slacks,
)

BINARY_OPS = [Operation.ADD, Operation.SUB, Operation.MULT]


@st.composite
def dfg_with_tasks(draw):
    """A random DAG plus a random binding onto 1..4 instances."""
    n_inputs = draw(st.integers(2, 3))
    n_ops = draw(st.integers(2, 10))
    b = GraphBuilder("g")
    wires = list(b.inputs(*[f"i{k}" for k in range(n_inputs)]))
    op_names = []
    for k in range(n_ops):
        op = draw(st.sampled_from(BINARY_OPS))
        lhs = wires[draw(st.integers(0, len(wires) - 1))]
        rhs = wires[draw(st.integers(0, len(wires) - 1))]
        wires.append(b.op(op, lhs, rhs, name=f"op{k}"))
        op_names.append(f"op{k}")
    b.output("out", wires[-1])
    dfg = b.build()

    n_instances = draw(st.integers(1, 4))
    tasks = []
    for k, name in enumerate(op_names):
        inst = f"I{draw(st.integers(0, n_instances - 1))}"
        duration = draw(st.integers(1, 5))
        tasks.append(TaskSpec(f"t{k}", (name,), inst, duration))
    return dfg, tasks


@given(dfg_with_tasks())
@settings(max_examples=40, deadline=None)
def test_no_instance_overlap(case):
    dfg, tasks = case
    result = schedule_tasks(dfg, tasks)
    for order in result.instance_order.values():
        for earlier, later in zip(order, order[1:]):
            assert result.start[later] >= result.finish[earlier]


@given(dfg_with_tasks())
@settings(max_examples=40, deadline=None)
def test_data_dependencies_respected(case):
    dfg, tasks = case
    by_node = {}
    for task in tasks:
        for node in task.nodes:
            by_node[node] = task
    result = schedule_tasks(dfg, tasks)
    for task in tasks:
        for edge in task.external_in_edges(dfg):
            if edge.src not in by_node:
                continue  # primary input
            assert result.avail[edge.signal] <= result.start[task.task_id]


@given(dfg_with_tasks())
@settings(max_examples=40, deadline=None)
def test_length_covers_outputs(case):
    dfg, tasks = case
    result = schedule_tasks(dfg, tasks)
    for out in dfg.outputs:
        (edge,) = dfg.in_edges(out)
        assert result.avail[edge.signal] <= result.length


@given(dfg_with_tasks(), st.integers(0, 20))
@settings(max_examples=40, deadline=None)
def test_slack_nonnegative_when_deadline_met(case, extra):
    dfg, tasks = case
    result = schedule_tasks(dfg, tasks)
    slacks = task_slacks(dfg, tasks, result, deadline=result.length + extra)
    assert all(s >= 0 for s in slacks.values())


@given(dfg_with_tasks())
@settings(max_examples=40, deadline=None)
def test_latest_start_at_least_actual(case):
    dfg, tasks = case
    result = schedule_tasks(dfg, tasks)
    latest = latest_start_times(dfg, tasks, result, deadline=result.length)
    for task in tasks:
        assert latest[task.task_id] >= result.start[task.task_id]
