"""Property tests for profile quantization (never optimistic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtl import Profile

offsets = st.tuples(
    st.floats(0.0, 100.0), st.floats(0.0, 100.0)
)
latencies = st.tuples(st.floats(0.5, 200.0))
clocks = st.floats(1.0, 40.0)
vdds = st.sampled_from([5.0, 3.3, 2.4])


@given(offsets, latencies, clocks, vdds)
@settings(max_examples=100)
def test_quantization_never_optimistic(offs, lats, clk, vdd):
    """Cycle offsets round down (assume inputs earlier), latencies round
    up (assume outputs later): quantization can only add pessimism."""
    from repro.library import delay_scale

    profile = Profile(offs, lats)
    cp = profile.at(clk, vdd)
    scale = delay_scale(vdd)
    for ns, cycles in zip(profile.input_offsets_ns, cp.input_offsets):
        assert cycles * clk <= ns * scale + 1e-6
    for ns, cycles in zip(profile.output_latencies_ns, cp.output_latencies):
        assert cycles * clk >= ns * scale - 1e-6


@given(offsets, latencies, clocks)
@settings(max_examples=100)
def test_lower_vdd_never_faster(offs, lats, clk):
    profile = Profile(offs, lats)
    ref = profile.at(clk, 5.0)
    slow = profile.at(clk, 2.4)
    for a, b in zip(slow.output_latencies, ref.output_latencies):
        assert a >= b


@given(
    st.tuples(st.integers(0, 10), st.integers(0, 10)),
    st.tuples(st.integers(1, 30)),
    clocks,
    vdds,
)
@settings(max_examples=100)
def test_from_cycles_roundtrip(offs, lats, clk, vdd):
    """Characterize at (clk, vdd) and re-quantize at the same point:
    latencies are exact; offsets may only shrink (safe direction)."""
    profile = Profile.from_cycles(offs, lats, clk, vdd)
    cp = profile.at(clk, vdd)
    assert cp.output_latencies == lats
    for original, recovered in zip(offs, cp.input_offsets):
        assert recovered <= original
        assert recovered >= original - 1
